#include "communix/cluster/log_shipper.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace communix::cluster {

LogShipper::LogShipper(CommunixServer& primary, Options options)
    : primary_(primary),
      options_(options),
      repl_token_(primary.IssueToken(kReplicationPeerId)) {}

LogShipper::~LogShipper() { Stop(); }

std::size_t LogShipper::AddFollower(std::string name,
                                    net::ClientTransport& transport) {
  std::lock_guard lock(mu_);
  Session s;
  s.name = std::move(name);
  s.transport = &transport;
  sessions_.push_back(std::move(s));
  return sessions_.size() - 1;
}

std::size_t LogShipper::follower_count() const {
  std::lock_guard lock(mu_);
  return sessions_.size();
}

Status LogShipper::DropSessionLocked(Session& s, Status cause) {
  // A broken session's cursor is released on the spot: shipping state is
  // soft, and the re-handshake restores it from the follower's own log.
  s.cursor.reset();
  s.pending_reset = false;
  ++s.drops;
  CX_LOG(kInfo, "cluster") << "dropped feed to " << s.name << ": "
                           << cause.ToString();
  return cause;
}

Status LogShipper::HandshakeLocked(Session& s) {
  // Anti-entropy handshake: probe the follower's (epoch, length).
  const net::ReplPullRequest probe{primary_.epoch(), 0, 0};
  auto called = s.transport->Call(net::BuildReplPullRequest(probe));
  if (!called.ok()) return DropSessionLocked(s, called.status());
  const net::Response& resp = called.value();
  if (!resp.ok()) {
    return DropSessionLocked(s, Status::Error(resp.code, resp.error));
  }
  const auto reply = net::ParseReplPullReply(resp);
  if (!reply) {
    return DropSessionLocked(
        s, Status::Error(ErrorCode::kDataLoss, "bad REPL_PULL reply"));
  }
  ++s.handshakes;
  // Resume only when the follower is a *prefix* of our log: same
  // epoch AND not ahead of us. A follower that acknowledged more
  // entries than we hold outran a primary restarted from a stale
  // snapshot — the logs forked under one epoch, and the only safe
  // repair is a full rebuild.
  if (reply->epoch == primary_.epoch() &&
      reply->log_size <= primary_.db_size()) {
    s.cursor = reply->log_size;  // resume where the follower stands
    s.pending_reset = false;
  } else {
    s.cursor = 0;  // divergent lineage: restart under our epoch
    s.pending_reset = true;
  }
  return Status::Ok();
}

void LogShipper::RefreshCheckpointLocked() {
  const std::uint64_t epoch = primary_.epoch();
  const std::uint64_t size = primary_.db_size();
  if (ckpt_blob_ != nullptr && ckpt_epoch_ == epoch &&
      size - ckpt_entries_ < options_.checkpoint_lag_threshold) {
    return;  // cached blob still buys the full bootstrap saving
  }
  // One capture serves every follower that needs a rebuild this epoch.
  ckpt_blob_ = std::make_shared<const std::vector<std::uint8_t>>(
      primary_.CaptureCheckpointBlob());
  ckpt_epoch_ = epoch;
  // Entries appended between the epoch read above and the capture are
  // simply part of the suffix; undercounting here only refreshes the
  // blob a little early.
  ckpt_entries_ = std::min<std::uint64_t>(size, primary_.db_size());
}

std::optional<LogShipper::PreparedStep> LogShipper::PrepareSendLocked(
    Session& s) {
  const std::uint64_t size = primary_.db_size();
  if (*s.cursor > size) {
    // Fork seen from a live session: the primary's log shrank under us
    // (stale-snapshot reload). Rebuild the follower.
    s.cursor = 0;
    s.pending_reset = true;
  }
  if (*s.cursor >= size && !s.pending_reset) return std::nullopt;

  if (s.pending_reset && options_.checkpoint_lag_threshold > 0 &&
      size >= options_.checkpoint_lag_threshold) {
    // Far-behind rebuild: one snapshot blob instead of size/batch_limit
    // reset batches. The follower replays only the suffix afterwards.
    RefreshCheckpointLocked();
    net::CheckpointTransfer ckpt;
    ckpt.token.assign(repl_token_.begin(), repl_token_.end());
    ckpt.blob = *ckpt_blob_;
    PreparedStep step;
    step.request = net::BuildCheckpointRequest(ckpt);
    step.epoch = ckpt_epoch_;
    step.is_checkpoint = true;
    return step;
  }

  net::ReplBatchRequest batch;
  batch.token.assign(repl_token_.begin(), repl_token_.end());
  batch.epoch = primary_.epoch();
  batch.reset = s.pending_reset;
  batch.from_index = *s.cursor;
  const std::uint64_t upto =
      std::min<std::uint64_t>(size, *s.cursor + options_.batch_limit);
  primary_.VisitEntries(
      *s.cursor, upto,
      [&](std::uint64_t, const store::StoredSignature& entry) {
        batch.entries.push_back(
            net::ReplEntry{entry.sender, entry.added_at, entry.bytes});
      });
  PreparedStep step;
  step.request = net::BuildReplBatchRequest(batch);
  step.epoch = batch.epoch;
  step.from_index = batch.from_index;
  step.reset = batch.reset;
  return step;
}

Result<std::size_t> LogShipper::ProcessReplyLocked(Session& s,
                                                   const PreparedStep& step,
                                                   const net::Response& resp) {
  if (!resp.ok()) {
    // kFailedPrecondition covers follower restarts (epoch changed under
    // us) and gaps; both heal through a fresh handshake.
    return DropSessionLocked(s, Status::Error(resp.code, resp.error));
  }
  const auto reply = net::ParseReplBatchReply(resp);
  if (!reply || reply->epoch != step.epoch) {
    return DropSessionLocked(
        s, Status::Error(ErrorCode::kDataLoss, "bad shipping reply"));
  }
  if (step.is_checkpoint) {
    // The follower now holds the snapshot; the feed resumes from its
    // committed length, so only the post-checkpoint suffix replays.
    s.cursor = reply->log_size;
    s.pending_reset = false;
    ++s.resets;
    ++s.checkpoints_shipped;
    return std::size_t{0};
  }
  if (reply->log_size < step.from_index) {
    return DropSessionLocked(
        s, Status::Error(ErrorCode::kDataLoss, "bad REPL_BATCH reply"));
  }
  if (s.pending_reset) {
    s.pending_reset = false;
    ++s.resets;
  }
  // The follower's committed length is the durable cursor; trusting it
  // (rather than from_index + count) keeps retransmissions idempotent.
  const std::uint64_t shipped = reply->log_size - *s.cursor;
  s.cursor = reply->log_size;
  s.entries_shipped += shipped;
  return static_cast<std::size_t>(shipped);
}

Result<std::size_t> LogShipper::ShipOnceLocked(Session& s) {
  if (!s.cursor.has_value()) {
    if (Status hs = HandshakeLocked(s); !hs.ok()) return hs;
  }
  const auto step = PrepareSendLocked(s);
  if (!step) return std::size_t{0};  // caught up
  auto called = s.transport->Call(step->request);
  if (!called.ok()) return DropSessionLocked(s, called.status());
  return ProcessReplyLocked(s, *step, called.value());
}

Result<std::size_t> LogShipper::ShipOnce(std::size_t id) {
  std::lock_guard lock(mu_);
  return ShipOnceLocked(sessions_.at(id));
}

std::size_t LogShipper::ShipRound() {
  std::lock_guard lock(mu_);
  std::size_t shipped = 0;

  // Phase 1: handshake sessionless followers (rare, synchronous) and
  // prepare this round's outbound frame for everyone else. Followers on
  // plain Call transports ship synchronously here.
  struct Outbound {
    std::size_t session;
    PreparedStep step;
    net::PipelinedClientTransport* transport;
    bool sent = false;
  };
  std::vector<Outbound> pipelined;
  pipelined.reserve(sessions_.size());
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    Session& s = sessions_[i];
    if (!s.cursor.has_value() && !HandshakeLocked(s).ok()) continue;
    auto step = PrepareSendLocked(s);
    if (!step) continue;  // caught up
    auto* pipe = dynamic_cast<net::PipelinedClientTransport*>(s.transport);
    if (pipe == nullptr) {
      auto called = s.transport->Call(step->request);
      if (!called.ok()) {
        (void)DropSessionLocked(s, called.status());
        continue;
      }
      if (auto r = ProcessReplyLocked(s, *step, called.value()); r.ok()) {
        shipped += r.value();
      }
      continue;
    }
    pipelined.push_back(Outbound{i, std::move(*step), pipe});
  }

  // Phase 2: every pipelined frame goes out before any reply is read —
  // the followers apply their frames concurrently, so the round costs
  // one round trip plus the slowest apply, not the sum.
  for (Outbound& out : pipelined) {
    const Status sent = out.transport->Send(out.step.request);
    if (!sent.ok()) {
      (void)DropSessionLocked(sessions_[out.session], sent);
      continue;
    }
    out.sent = true;
  }

  // Phase 3: collect replies in send order (one outstanding request per
  // transport, so Receive pairs with this round's Send).
  for (Outbound& out : pipelined) {
    if (!out.sent) continue;
    auto called = out.transport->Receive();
    if (!called.ok()) {
      (void)DropSessionLocked(sessions_[out.session], called.status());
      continue;
    }
    if (auto r = ProcessReplyLocked(sessions_[out.session], out.step,
                                    called.value());
        r.ok()) {
      shipped += r.value();
    }
  }
  return shipped;
}

bool LogShipper::PumpUntilSynced(std::size_t max_rounds) {
  for (std::size_t round = 0; round < max_rounds; ++round) {
    ShipRound();
    const std::uint64_t size = primary_.db_size();
    std::lock_guard lock(mu_);
    const bool synced = std::all_of(
        sessions_.begin(), sessions_.end(), [&](const Session& s) {
          return s.cursor.has_value() && !s.pending_reset && *s.cursor >= size;
        });
    if (synced) return true;
  }
  return false;
}

void LogShipper::Start() {
  if (running_.exchange(true)) return;
  daemon_ = std::thread([this] { DaemonLoop(); });
}

void LogShipper::Stop() {
  if (!running_.exchange(false)) return;
  daemon_cv_.notify_all();
  if (daemon_.joinable()) daemon_.join();
}

void LogShipper::DaemonLoop() {
  std::unique_lock lock(daemon_mu_);
  while (running_.load()) {
    lock.unlock();
    ShipRound();
    lock.lock();
    daemon_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.ship_period_ms),
                        [&] { return !running_.load(); });
  }
}

LogShipper::FollowerStatus LogShipper::GetFollowerStatus(
    std::size_t id) const {
  const std::uint64_t size = primary_.db_size();
  std::lock_guard lock(mu_);
  const Session& s = sessions_.at(id);
  FollowerStatus out;
  out.name = s.name;
  out.cursor = s.cursor;
  out.lag = (s.cursor.has_value() && !s.pending_reset)
                ? size - std::min<std::uint64_t>(*s.cursor, size)
                : size;
  out.entries_shipped = s.entries_shipped;
  out.handshakes = s.handshakes;
  out.resets = s.resets;
  out.drops = s.drops;
  out.checkpoints_shipped = s.checkpoints_shipped;
  return out;
}

std::size_t LogShipper::active_feed_cursors() const {
  std::lock_guard lock(mu_);
  return static_cast<std::size_t>(
      std::count_if(sessions_.begin(), sessions_.end(),
                    [](const Session& s) { return s.cursor.has_value(); }));
}

obs::ProbeHandle LogShipper::ExportStats(obs::MetricsRegistry& registry) const {
  return registry.RegisterProbe([this](obs::ProbeSink& sink) {
    const std::uint64_t size = primary_.db_size();
    std::uint64_t shipped = 0, handshakes = 0, resets = 0, drops = 0;
    std::uint64_t checkpoints = 0, lag = 0, cursors = 0, followers = 0;
    {
      std::lock_guard lock(mu_);
      followers = sessions_.size();
      for (const Session& s : sessions_) {
        shipped += s.entries_shipped;
        handshakes += s.handshakes;
        resets += s.resets;
        drops += s.drops;
        checkpoints += s.checkpoints_shipped;
        lag += (s.cursor.has_value() && !s.pending_reset)
                   ? size - std::min<std::uint64_t>(*s.cursor, size)
                   : size;
        if (s.cursor.has_value()) ++cursors;
      }
    }
    sink.EmitCounter("cluster.shipper.entries_shipped", shipped);
    sink.EmitCounter("cluster.shipper.handshakes", handshakes);
    sink.EmitCounter("cluster.shipper.resets", resets);
    sink.EmitCounter("cluster.shipper.drops", drops);
    sink.EmitCounter("cluster.shipper.checkpoints_shipped", checkpoints);
    sink.EmitGauge("cluster.shipper.followers", followers);
    sink.EmitGauge("cluster.shipper.active_feed_cursors", cursors);
    sink.EmitGauge("cluster.shipper.total_lag", lag);
  });
}

}  // namespace communix::cluster
