#include "communix/client.hpp"

#include "util/logging.hpp"
#include "util/serde.hpp"

namespace communix {

CommunixClient::CommunixClient(Clock& clock, net::ClientTransport& transport,
                               LocalRepository& repo, Options options)
    : clock_(clock), transport_(transport), repo_(repo), options_(options) {}

CommunixClient::~CommunixClient() { Stop(); }

Result<std::size_t> CommunixClient::PollOnce() {
  net::Request request;
  request.type = net::MsgType::kGetSignatures;
  BinaryWriter w;
  w.WriteU64(repo_.next_server_index());
  request.payload = w.take();

  auto result = transport_.Call(request);
  if (!result.ok()) return result.status();
  const net::Response& resp = result.value();
  if (!resp.ok()) return Status::Error(resp.code, resp.error);

  BinaryReader r(std::span<const std::uint8_t>(resp.payload.data(),
                                               resp.payload.size()));
  const std::uint32_t count = r.ReadU32();
  std::vector<std::vector<std::uint8_t>> sigs;
  sigs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    sigs.push_back(r.ReadBytes());
    if (!r.ok()) {
      return Status::Error(ErrorCode::kDataLoss, "corrupt GET reply");
    }
  }
  const std::size_t n = sigs.size();
  repo_.Append(std::move(sigs));
  polls_.fetch_add(1, std::memory_order_relaxed);
  return n;
}

void CommunixClient::Start() {
  if (running_.exchange(true)) return;
  daemon_ = std::thread([this] { DaemonLoop(); });
}

void CommunixClient::Stop() {
  if (!running_.exchange(false)) return;
  if (daemon_.joinable()) daemon_.join();
}

void CommunixClient::DaemonLoop() {
  while (running_.load()) {
    clock_.SleepFor(options_.poll_period);
    if (!running_.load()) break;
    auto result = PollOnce();
    if (!result.ok()) {
      CX_LOG(kInfo, "client") << "poll failed: "
                              << result.status().ToString();
    }
  }
}

}  // namespace communix
