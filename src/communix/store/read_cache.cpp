#include "communix/store/read_cache.hpp"

#include <algorithm>

namespace communix::store {

namespace {

std::size_t A1inCapacity(std::size_t capacity) {
  return std::max<std::size_t>(1, capacity / 4);
}

}  // namespace

ReadCache::ReadCache(std::size_t capacity)
    : kin_(A1inCapacity(std::max<std::size_t>(capacity, 2))),
      kam_(std::max<std::size_t>(capacity, 2) - kin_),
      kout_(std::max<std::size_t>(capacity, 2)) {}

bool ReadCache::SyncGenerationLocked(std::uint64_t generation) {
  if (generation == generation_) return true;
  if (generation < generation_) return false;
  // First access under a newer log identity: everything cached was built
  // from a retired log and must never be served again.
  if (!table_.empty() || !a1out_.empty()) ++stats_.invalidations;
  ClearLocked();
  generation_ = generation;
  return true;
}

void ReadCache::ClearLocked() {
  table_.clear();
  a1in_.clear();
  am_.clear();
  a1out_.clear();
  a1out_index_.clear();
}

void ReadCache::Clear() {
  std::lock_guard lock(mu_);
  if (!table_.empty() || !a1out_.empty()) ++stats_.invalidations;
  ClearLocked();
}

std::shared_ptr<const CachedSlice> ReadCache::Lookup(std::uint64_t generation,
                                                     std::uint64_t from) {
  std::lock_guard lock(mu_);
  if (!SyncGenerationLocked(generation)) {
    ++stats_.misses;
    return nullptr;
  }
  const auto it = table_.find(from);
  if (it == table_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  Entry& entry = it->second;
  if (entry.where == Where::kAm) {
    am_.splice(am_.begin(), am_, entry.pos);  // refresh LRU position
  }
  ++stats_.hits;
  return entry.slice;
}

void ReadCache::EvictOneLocked(std::list<std::uint64_t>& queue,
                               bool remember_ghost) {
  const std::uint64_t victim = queue.back();
  queue.pop_back();
  table_.erase(victim);
  ++stats_.evictions;
  if (remember_ghost) {
    a1out_.push_front(victim);
    a1out_index_[victim] = a1out_.begin();
    if (a1out_.size() > kout_) {
      a1out_index_.erase(a1out_.back());
      a1out_.pop_back();
    }
  }
}

void ReadCache::Insert(std::uint64_t generation,
                       std::shared_ptr<const CachedSlice> slice) {
  if (slice == nullptr) return;
  const std::uint64_t key = slice->from;
  std::lock_guard lock(mu_);
  if (!SyncGenerationLocked(generation)) return;  // stale-log data

  if (const auto it = table_.find(key); it != table_.end()) {
    // Replacement (the extension path: same key, longer slice). Where it
    // lives is unchanged — an extension is a re-reference of a key that
    // is already resident, not new evidence beyond what Lookup recorded.
    it->second.slice = std::move(slice);
    if (it->second.where == Where::kAm) {
      am_.splice(am_.begin(), am_, it->second.pos);
    }
    return;
  }

  if (const auto ghost = a1out_index_.find(key);
      ghost != a1out_index_.end()) {
    // Referenced again after probation eviction: a proven-hot key goes
    // into the protected LRU.
    a1out_.erase(ghost->second);
    a1out_index_.erase(ghost);
    while (am_.size() >= kam_) EvictOneLocked(am_, /*remember_ghost=*/false);
    am_.push_front(key);
    table_[key] = Entry{std::move(slice), Where::kAm, am_.begin()};
    ++stats_.promotions;
    return;
  }

  // Unknown key: probation.
  while (a1in_.size() >= kin_) EvictOneLocked(a1in_, /*remember_ghost=*/true);
  a1in_.push_front(key);
  table_[key] = Entry{std::move(slice), Where::kA1in, a1in_.begin()};
  ++stats_.admissions;
}

ReadCache::Stats ReadCache::GetStats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t ReadCache::resident() const {
  std::lock_guard lock(mu_);
  return table_.size();
}

}  // namespace communix::store
