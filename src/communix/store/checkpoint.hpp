// Epoch-consistent store checkpoints (DB format v3).
//
// One serialized blob format serves two consumers:
//
//   * persistence — SaveToFile/LoadFromFile write and read it, and the
//     v1 (seed layout) and v2 (+epoch) files still load;
//   * bootstrap — the LogShipper ships the same blob over the wire
//     (net::MsgType::kCheckpoint) to a follower whose lineage diverged,
//     so it installs a snapshot and replays only the log suffix instead
//     of re-ingesting the whole database entry by entry.
//
// v3 layout (little-endian):
//
//   header:  u32 magic "CMSB" | u32 version=3 | u64 epoch
//            u64 total_count  | u32 frame_count
//            u64 fnv1a(epoch | total_count | frame_count)
//   frame:   u32 entry_count | u32 payload_len | u64 fnv1a(payload)
//            payload = entry_count records
//   record:  u8 flags (bit0: superseded) | u64 sender | i64 added_at
//            u32 sig_len + sig bytes
//
// The framing is what makes a damaged checkpoint *detectably* damaged:
// the header pins the total entry count up front (truncation at any
// frame boundary leaves a count shortfall), payload lengths bound every
// frame (mid-frame truncation fails the bounds-checked reader), the
// per-frame FNV-1a checksum catches byte corruption, and the header's
// own checksum covers the metadata the frame checksums don't (a flipped
// epoch byte must not parse as a valid checkpoint of another lineage). ParseCheckpoint
// validates ALL of it — including that every signature's bytes round-trip
// and that no content id repeats — before returning, so a follower can
// fully vet a blob before wiping its store to install it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "communix/store/signature_log.hpp"
#include "communix/store/user_state_shards.hpp"
#include "util/status.hpp"

namespace communix::store {

/// One validated checkpoint entry: the stored signature plus the
/// adjacency top-set rebuilt from its (verified) bytes.
struct CheckpointRecord {
  StoredSignature entry;
  TopFrameKeys tops;
};

/// A fully validated, installable snapshot of a store at (epoch, size).
struct CheckpointData {
  /// Log lineage the snapshot belongs to; 0 for a v1 file (the seed
  /// format recorded none — the caller adopts a fresh epoch).
  std::uint64_t epoch = 0;
  std::vector<CheckpointRecord> records;
};

/// Entries per v3 frame (also the truncation-test granularity).
constexpr std::size_t kCheckpointFrameEntries = 512;

/// Serializes `entries` as a v3 blob. The caller provides an immutable
/// snapshot (SignatureStore::CaptureSnapshot) — the committed prefix of
/// a log never mutates, so capture + serialize never blocks readers.
std::vector<std::uint8_t> SerializeCheckpoint(
    std::uint64_t epoch, std::span<const StoredSignature> entries);

/// Parses and fully validates a checkpoint/DB blob of any supported
/// version (v1 seed layout, v2 +epoch, v3 framed). kDataLoss on any
/// header/frame/checksum/signature/duplicate defect; the out-param is
/// untouched on failure.
Status ParseCheckpoint(std::span<const std::uint8_t> bytes,
                       CheckpointData* out);

}  // namespace communix::store
