// Lock-striped per-user validation state.
//
// The rate-limit and adjacency checks (§III-C1, §III-C2) are inherently
// per-user: two ADDs from different users never need to observe each
// other's state. The seed serialized them anyway behind the server-wide
// mutex. Here users hash onto N independent shards (same idiom as lock
// striping a latency-monitor array with atomics: contention-free unless
// two requests actually collide on a shard), so concurrent ADDs from
// different users proceed in parallel.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "communix/ids.hpp"

namespace communix::store {

/// Top-frame key sets of one signature (input to the adjacency check).
using TopFrameKeys = std::unordered_set<std::uint64_t>;

/// Per-user server-side validation state (§III-C).
struct UserState {
  /// Top-frame key sets of this user's accepted signatures.
  std::vector<TopFrameKeys> accepted_top_sets;
  std::int64_t day = -1;
  std::size_t processed_today = 0;
};

class UserStateShards {
 public:
  /// `num_shards` is rounded up to a power of two (min 1).
  explicit UserStateShards(std::size_t num_shards);

  UserStateShards(const UserStateShards&) = delete;
  UserStateShards& operator=(const UserStateShards&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  /// Runs `fn(UserState&)` for `user` under that user's shard lock,
  /// creating the state on first touch. Returns fn's result. Callers must
  /// not re-enter UserStateShards from inside fn (the shard lock is held).
  template <typename Fn>
  auto With(UserId user, Fn&& fn) -> decltype(fn(std::declval<UserState&>())) {
    Shard& shard = *shards_[ShardIndex(user)];
    std::lock_guard lock(shard.mu);
    return fn(shard.users[user]);
  }

  /// Drops all user state (LoadFromFile path; restart-time only).
  void Clear();

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<UserId, UserState> users;
  };

  std::size_t ShardIndex(UserId user) const {
    // splitmix64 finalizer: user ids are often sequential, so mix before
    // masking or all of them land in a handful of shards.
    std::uint64_t x = user;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & (shards_.size() - 1);
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace communix::store
