#include "communix/store/checkpoint.hpp"

#include <algorithm>
#include <unordered_set>

#include "communix/store/signature_store.hpp"
#include "dimmunix/signature.hpp"
#include "util/fnv.hpp"
#include "util/serde.hpp"

namespace communix::store {

namespace {

constexpr std::uint32_t kDbMagic = 0x434D5342;  // "CMSB"
constexpr std::uint32_t kVersionV1 = 1;         // seed layout, no epoch
constexpr std::uint32_t kVersionV2 = 2;         // +epoch in the header
constexpr std::uint32_t kVersionV3 = 3;         // framed + checksummed

constexpr std::uint8_t kFlagSuperseded = 0x01;
constexpr std::uint8_t kKnownFlags = kFlagSuperseded;

Status Corrupt(const char* what) {
  return Status::Error(ErrorCode::kDataLoss, what);
}

/// Validates one record's signature bytes and rebuilds the derived
/// state every install needs: the content id (dedup) and the top-frame
/// set (per-user adjacency restriction, which must keep holding across
/// restarts and bootstraps). The daily quota intentionally resets.
Status FinishRecord(CheckpointRecord& rec,
                    std::unordered_set<std::uint64_t>& seen_content_ids) {
  auto sig = dimmunix::Signature::FromBytes(std::span<const std::uint8_t>(
      rec.entry.bytes.data(), rec.entry.bytes.size()));
  if (!sig) return Corrupt("stored signature fails to parse");
  rec.entry.content_id = sig->ContentId();
  if (!seen_content_ids.insert(rec.entry.content_id).second) {
    return Corrupt("checkpoint repeats a content id");
  }
  rec.tops = TopFrameSet(*sig);
  return Status::Ok();
}

/// v1/v2 body: u32 count, then unframed records (no flags byte, no
/// checksums — the layouts this repo has shipped since the seed).
Status ParseLegacyBody(BinaryReader& r, CheckpointData& data) {
  const std::uint32_t count = r.ReadU32();
  if (!r.ok()) return Corrupt("truncated server DB header");
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(count);
  data.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CheckpointRecord rec;
    rec.entry.sender = r.ReadU64();
    rec.entry.added_at = r.ReadI64();
    rec.entry.bytes = r.ReadBytes();
    if (!r.ok()) return Corrupt("corrupt server DB record");
    if (auto s = FinishRecord(rec, seen); !s.ok()) return s;
    data.records.push_back(std::move(rec));
  }
  return Status::Ok();
}

/// FNV over the v3 header's metadata fields (epoch, total_count,
/// frame_count). Frame checksums cover only frame payloads; without
/// this, a bit flip in the epoch would parse as a *valid* checkpoint of
/// a different lineage.
std::uint64_t HeaderChecksum(std::uint64_t epoch, std::uint64_t total_count,
                             std::uint32_t frame_count) {
  BinaryWriter hdr;
  hdr.WriteU64(epoch);
  hdr.WriteU64(total_count);
  hdr.WriteU32(frame_count);
  return Fnv1a(
      std::span<const std::uint8_t>(hdr.data().data(), hdr.size()));
}

Status ParseV3Body(BinaryReader& r, CheckpointData& data) {
  const std::uint64_t total_count = r.ReadU64();
  const std::uint32_t frame_count = r.ReadU32();
  const std::uint64_t header_checksum = r.ReadU64();
  if (!r.ok()) return Corrupt("truncated checkpoint header");
  if (HeaderChecksum(data.epoch, total_count, frame_count) !=
      header_checksum) {
    return Corrupt("checkpoint header checksum mismatch");
  }
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(total_count);
  data.records.reserve(total_count);
  for (std::uint32_t f = 0; f < frame_count; ++f) {
    const std::uint32_t entry_count = r.ReadU32();
    const std::uint32_t payload_len = r.ReadU32();
    const std::uint64_t checksum = r.ReadU64();
    if (!r.ok()) return Corrupt("truncated checkpoint frame header");
    if (entry_count == 0 || entry_count > kCheckpointFrameEntries) {
      return Corrupt("checkpoint frame entry count out of range");
    }
    const std::vector<std::uint8_t> payload = r.ReadRaw(payload_len);
    if (!r.ok()) return Corrupt("truncated checkpoint frame payload");
    if (Fnv1a(std::span<const std::uint8_t>(payload.data(), payload.size())) !=
        checksum) {
      return Corrupt("checkpoint frame checksum mismatch");
    }
    BinaryReader body(
        std::span<const std::uint8_t>(payload.data(), payload.size()));
    for (std::uint32_t i = 0; i < entry_count; ++i) {
      CheckpointRecord rec;
      const std::uint8_t flags = body.ReadU8();
      rec.entry.sender = body.ReadU64();
      rec.entry.added_at = body.ReadI64();
      rec.entry.bytes = body.ReadBytes();
      if (!body.ok()) return Corrupt("corrupt checkpoint record");
      if ((flags & ~kKnownFlags) != 0) {
        return Corrupt("checkpoint record carries unknown flags");
      }
      rec.entry.superseded = (flags & kFlagSuperseded) != 0;
      if (auto s = FinishRecord(rec, seen); !s.ok()) return s;
      data.records.push_back(std::move(rec));
    }
    if (!body.AtEnd()) return Corrupt("checkpoint frame payload overlong");
  }
  if (data.records.size() != total_count) {
    return Corrupt("checkpoint entry count mismatch (truncated?)");
  }
  return Status::Ok();
}

}  // namespace

std::vector<std::uint8_t> SerializeCheckpoint(
    std::uint64_t epoch, std::span<const StoredSignature> entries) {
  const std::size_t frame_count =
      (entries.size() + kCheckpointFrameEntries - 1) / kCheckpointFrameEntries;
  BinaryWriter w;
  w.WriteU32(kDbMagic);
  w.WriteU32(kVersionV3);
  w.WriteU64(epoch);
  w.WriteU64(entries.size());
  w.WriteU32(static_cast<std::uint32_t>(frame_count));
  w.WriteU64(HeaderChecksum(epoch, entries.size(),
                            static_cast<std::uint32_t>(frame_count)));
  for (std::size_t base = 0; base < entries.size();
       base += kCheckpointFrameEntries) {
    const std::size_t n =
        std::min(kCheckpointFrameEntries, entries.size() - base);
    BinaryWriter frame;
    for (std::size_t i = 0; i < n; ++i) {
      const StoredSignature& s = entries[base + i];
      frame.WriteU8(s.superseded ? kFlagSuperseded : 0);
      frame.WriteU64(s.sender);
      frame.WriteI64(s.added_at);
      frame.WriteBytes(
          std::span<const std::uint8_t>(s.bytes.data(), s.bytes.size()));
    }
    w.WriteU32(static_cast<std::uint32_t>(n));
    w.WriteU32(static_cast<std::uint32_t>(frame.size()));
    w.WriteU64(Fnv1a(
        std::span<const std::uint8_t>(frame.data().data(), frame.size())));
    w.WriteRaw(std::span<const std::uint8_t>(frame.data().data(),
                                             frame.size()));
  }
  return w.take();
}

Status ParseCheckpoint(std::span<const std::uint8_t> bytes,
                       CheckpointData* out) {
  BinaryReader r(bytes);
  const std::uint32_t magic = r.ReadU32();
  const std::uint32_t version = r.ReadU32();
  if (!r.ok() || magic != kDbMagic ||
      (version != kVersionV1 && version != kVersionV2 &&
       version != kVersionV3)) {
    return Corrupt("bad server DB header");
  }
  CheckpointData data;
  data.epoch = version >= kVersionV2 ? r.ReadU64() : 0;
  Status s = version == kVersionV3 ? ParseV3Body(r, data)
                                   : ParseLegacyBody(r, data);
  if (!s.ok()) return s;
  if (!r.AtEnd()) return Corrupt("trailing bytes after server DB body");
  *out = std::move(data);
  return Status::Ok();
}

}  // namespace communix::store
