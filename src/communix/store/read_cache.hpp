// 2Q admission cache for hot GET cursor ranges (SNIPPETS §1 lineage:
// hanwen-sun/2QLevelDB's admission policy, adapted from block caching to
// materialized reply slices).
//
// The server's cold GET(k) path serializes every committed entry with
// index >= k — O(db) per request, and the paper's hot workload repeats
// the same handful of cursors (every community member polls GET(0)).
// This cache keys *materialized reply slices* — the length-prefixed
// serialized-signature region of a GET reply, exactly the bytes the wire
// handler would rebuild — by (generation, from_index) prefix range.
//
// Why 2Q instead of plain LRU: the same scan loop also issues one-off
// cursors (a daemon catching up from a random k), and under LRU a burst
// of those evicts the hot GET(0) slice. 2Q admits new keys into a small
// FIFO probation queue (A1in); only a key that is referenced *again
// after falling out of probation* (tracked by the A1out ghost queue of
// bare keys) is promoted into the protected LRU (Am). One-shot cursors
// wash through A1in without ever displacing the hot set.
//
// Slices are append-only within a generation: an entry for `from` whose
// `upto` lags the committed length is still a hit — the caller reuses
// the prefix bytes and scans only [upto, size) (an "extension"), which
// is what keeps hit rates high while ADDs keep landing.
//
// Invalidation is by generation, the store's log-identity counter: every
// RCU log swap (ResetForReplication, LoadFromFile, InstallSnapshot,
// Compact) bumps it, so a slice can never survive into a log it was not
// built from. The first access under a newer generation drops the whole
// table (log swaps are rare, lineage-changing events). Accesses under an
// *older* generation (a reader that snapshotted the log just before a
// swap) miss and are never admitted.
//
// Thread-safety: one mutex; every critical section is a hash probe plus
// an O(1) list splice, orders of magnitude below the O(db) scan a hit
// avoids. Values are shared_ptr<const CachedSlice>, so hits are served
// outside the lock and eviction never invalidates a reply mid-build.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace communix::store {

/// One materialized GET reply slice: the length-prefixed serialized
/// signatures of entries [from, upto) of one log generation. Indexes are
/// dense, so count == upto - from; it is carried as the u32 the wire
/// reply is prefixed with.
struct CachedSlice {
  std::uint64_t from = 0;
  std::uint64_t upto = 0;  // exclusive; the committed length at build time
  std::uint32_t count = 0;
  std::vector<std::uint8_t> payload;
};

class ReadCache {
 public:
  /// `capacity` bounds resident slices (A1in + Am). The probation queue
  /// gets max(1, capacity/4) of it, the protected LRU the rest; the
  /// ghost queue remembers up to `capacity` evicted keys.
  explicit ReadCache(std::size_t capacity);

  ReadCache(const ReadCache&) = delete;
  ReadCache& operator=(const ReadCache&) = delete;

  /// The slice for (generation, from), or nullptr. A hit in Am refreshes
  /// LRU position; a hit in A1in does not promote (classic 2Q — only
  /// re-reference after probation eviction proves a key hot).
  std::shared_ptr<const CachedSlice> Lookup(std::uint64_t generation,
                                            std::uint64_t from);

  /// Admits (or replaces — the extension path) the slice for
  /// (generation, slice->from). Keys remembered by the ghost queue go
  /// straight to Am; new keys enter A1in probation. Inserts under a
  /// generation older than the newest seen are discarded.
  void Insert(std::uint64_t generation,
              std::shared_ptr<const CachedSlice> slice);

  /// Drops every slice and ghost (explicit invalidation; generation
  /// rollover does this implicitly).
  void Clear();

  struct Stats {
    std::uint64_t hits = 0;         // lookup found a current-generation slice
    std::uint64_t misses = 0;
    std::uint64_t admissions = 0;   // new keys admitted into A1in
    std::uint64_t promotions = 0;   // ghost-hit keys admitted into Am
    std::uint64_t evictions = 0;    // resident slices dropped (A1in + Am)
    std::uint64_t invalidations = 0;  // whole-table generation clears
  };
  Stats GetStats() const;

  std::size_t resident() const;

 private:
  enum class Where { kA1in, kAm };

  struct Entry {
    std::shared_ptr<const CachedSlice> slice;
    Where where = Where::kA1in;
    std::list<std::uint64_t>::iterator pos;
  };

  /// Adopts `generation` if newer (clearing the table). Returns false if
  /// `generation` is older than the newest seen. Caller holds mu_.
  bool SyncGenerationLocked(std::uint64_t generation);
  void EvictOneLocked(std::list<std::uint64_t>& queue, bool remember_ghost);
  void ClearLocked();

  const std::size_t kin_;   // A1in capacity
  const std::size_t kam_;   // Am capacity
  const std::size_t kout_;  // ghost capacity

  mutable std::mutex mu_;
  std::uint64_t generation_ = 0;
  std::unordered_map<std::uint64_t, Entry> table_;     // from -> resident
  std::list<std::uint64_t> a1in_;                      // FIFO, front = newest
  std::list<std::uint64_t> am_;                        // LRU, front = MRU
  std::list<std::uint64_t> a1out_;                     // ghost FIFO
  std::unordered_map<std::uint64_t,
                     std::list<std::uint64_t>::iterator>
      a1out_index_;
  Stats stats_;
};

}  // namespace communix::store
