// Append-only segmented signature log.
//
// The hot path of the Communix server is GET(k) iterating the whole
// database while ADDs keep appending (Figure 2). The seed kept both
// behind one shared_mutex, so every scan blocked every append. Here the
// log is split into fixed-size segments whose pointers are published
// through atomics, and the committed length is an atomic published with
// release ordering after the slot is fully written. Readers load the
// length with acquire ordering and then walk committed slots without
// taking any lock; writers serialize only among themselves on a short
// append mutex.
//
// Indexes are assigned in append order and never change, so clients'
// incremental GET(k) cursors stay valid (same guarantee the monolithic
// server gave).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "communix/ids.hpp"
#include "util/clock.hpp"

namespace communix::store {

/// One accepted signature as the server stores it.
struct StoredSignature {
  std::vector<std::uint8_t> bytes;
  std::uint64_t content_id = 0;
  UserId sender = 0;
  TimePoint added_at = 0;
  /// Superseded by ReplaceSignature / FP-disable; compaction drops these.
  /// Plain bool: meaningful only on *at-rest* copies (checkpoints,
  /// snapshots, Reset input). The live log never mutates this field in a
  /// slot readers can see — runtime marks live in atomic side-flags
  /// (MarkSuperseded/IsSuperseded) precisely so lock-free scans and
  /// concurrent marks never race on entry memory.
  bool superseded = false;
};

class SignatureLog {
 public:
  static constexpr std::size_t kSegmentBits = 10;
  static constexpr std::size_t kSegmentSize = std::size_t{1} << kSegmentBits;
  /// 64Ki segments x 1Ki slots = 67M signatures, far beyond any workload
  /// in this repo; Append aborts past it rather than corrupting.
  static constexpr std::size_t kMaxSegments = std::size_t{1} << 16;
  static constexpr std::uint64_t kCapacity =
      static_cast<std::uint64_t>(kSegmentSize) * kMaxSegments;

  SignatureLog();
  ~SignatureLog();

  SignatureLog(const SignatureLog&) = delete;
  SignatureLog& operator=(const SignatureLog&) = delete;

  /// Appends one committed entry; returns its index. Thread-safe against
  /// concurrent Append and against lock-free readers.
  std::uint64_t Append(StoredSignature entry);

  /// Committed length. Entries with index < size() are fully visible.
  std::uint64_t size() const {
    return published_.load(std::memory_order_acquire);
  }

  /// Borrowed reference to a committed entry (`index < size()`); valid for
  /// the lifetime of the log (segments are never moved or freed before
  /// destruction/Reset).
  const StoredSignature& At(std::uint64_t index) const;

  /// Visits committed entries with index in [from, min(upto, size()))
  /// in index order, without taking the writer lock. `upto` lets callers
  /// pin an exact snapshot length (e.g. for a count-prefixed reply). The
  /// segment pointer is chased once per segment, not once per entry, so
  /// long scans cost one acquire load per kSegmentSize entries.
  void Visit(std::uint64_t from, std::uint64_t upto,
             const std::function<void(std::uint64_t index,
                                      const StoredSignature& entry)>& fn) const;

  /// Marks a committed entry superseded (ReplaceSignature / FP-disable);
  /// compaction later drops it. The mark lives in an atomic side-flag
  /// next to the slot — entry bytes are never touched, so lock-free
  /// scans of the entry race with nothing. Returns true on the first
  /// mark, false if already marked (idempotent). `index < size()`.
  bool MarkSuperseded(std::uint64_t index);

  /// Whether MarkSuperseded hit this committed entry (`index < size()`).
  bool IsSuperseded(std::uint64_t index) const;

  /// Marked-entry count (== number of MarkSuperseded firsts since the
  /// last Reset, plus entries Reset ingested with `superseded` set).
  std::uint64_t superseded_count() const {
    return superseded_.load(std::memory_order_acquire);
  }

  /// Replaces the whole log (LoadFromFile path), seeding side-flags from
  /// each entry's `superseded` field. NOT safe against concurrent
  /// readers or writers; restart-time only, like the seed's whole-db
  /// swap under its exclusive lock. (Live swaps build a private log and
  /// publish it through the store's atomic<shared_ptr> instead.)
  void Reset(std::vector<StoredSignature> entries);

 private:
  struct Segment;

  /// Slot for `index`, allocating the segment if needed. Caller holds
  /// append_mu_.
  StoredSignature* SlotForAppend(std::uint64_t index);

  std::mutex append_mu_;
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> superseded_{0};
  /// Readers reach segments only through these atomics; the pointer store
  /// happens-before the matching published_ release.
  std::unique_ptr<std::atomic<Segment*>[]> segments_;
};

}  // namespace communix::store
