#include "communix/store/user_state_shards.hpp"

namespace communix::store {

namespace {
std::size_t RoundUpPow2(std::size_t n) {
  if (n <= 1) return 1;
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

UserStateShards::UserStateShards(std::size_t num_shards) {
  const std::size_t n = RoundUpPow2(num_shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void UserStateShards::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->users.clear();
  }
}

}  // namespace communix::store
