// Storage layer of the Communix server.
//
// The server (communix/server.*) is the validation *pipeline*: it decodes
// sender tokens, checks signature well-formedness and maps outcomes to
// wire statuses. Everything stateful — the signature database, the
// per-user rate-limit/adjacency state, the dedup set and persistence —
// lives behind this interface.
//
// Two backends implement the exact same §III-C decision procedure (the
// shared pipeline in RunAddPipeline below is the single source of truth,
// so accept/reject/duplicate outcomes and assigned GET indexes are
// bit-identical for any serialized order of operations):
//
//   kMonolithic — the seed's layout: one shared_mutex over a vector, a
//     set and a user map. Baseline for the Figure-2 comparison bench.
//   kSharded    — SignatureLog (lock-free committed reads) +
//     UserStateShards (per-user lock striping) + DedupIndex. Concurrent
//     ADDs from different users never contend, and GET scans never block
//     ADDs.
//
// The two backends share the on-disk format: a database saved by either
// loads into the other, and clients' incremental GET(k) cursors stay
// valid across restarts. Version 3 (checkpoint.hpp) frames and
// checksums the record stream so the same blob doubles as the wire
// checkpoint a far-behind follower bootstraps from; v2 (epoch in the
// header) and v1 (the seed server's exact layout, adopting a fresh
// epoch on load) still load.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "communix/ids.hpp"
#include "communix/store/checkpoint.hpp"
#include "communix/store/read_cache.hpp"
#include "communix/store/signature_log.hpp"
#include "communix/store/user_state_shards.hpp"
#include "dimmunix/signature.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace communix::store {

/// Union of the top-frame keys of every stack in `sig` (adjacency input).
TopFrameKeys TopFrameSet(const dimmunix::Signature& sig);

/// "Some (but not all) top frames in common" (§III-C2): nonempty
/// intersection and the sets are not identical.
bool Adjacent(const TopFrameKeys& a, const TopFrameKeys& b);

/// Outcome of the store-side ADD decision procedure. The server maps
/// these to wire statuses; bad-token and malformed rejections happen
/// before the store is consulted.
enum class AddOutcome {
  kAccepted,
  kDuplicate,
  kRateLimited,
  kAdjacent,
  /// The sender's *community* exhausted its daily budget (multi-tenant
  /// quota — see Limits::per_tenant_daily_limit). Distinct from
  /// kRateLimited so a tenant-wide flood is visible as such in stats.
  kTenantRateLimited,
};

/// Knobs of the §III-C checks the store enforces.
struct Limits {
  std::size_t per_user_daily_limit = 10;
  bool adjacency_check_enabled = true;
  /// Daily budget of *processed* signatures per community (the tenant
  /// the sender's user id encodes — ids.hpp CommunityOf). Checked after
  /// the per-user quota, so a tenant-limited ADD has already consumed
  /// the sender's personal budget (a sybil flood cannot probe the tenant
  /// limit for free). 0 disables the check (single-tenant deployments).
  std::size_t per_tenant_daily_limit = 0;
};

enum class Backend {
  kSharded,
  kMonolithic,
};

struct StoreOptions {
  Backend backend = Backend::kSharded;
  /// Lock stripes for per-user state / the dedup set (sharded backend
  /// only; rounded up to powers of two).
  std::size_t user_shards = 16;
  std::size_t dedup_shards = 16;
  /// Log epoch (replication lineage id); 0 generates a fresh
  /// process-unique nonzero value. Tests pin it for determinism.
  std::uint64_t epoch = 0;
  /// Resident slice capacity of the 2Q hot-read cache behind ReadSince
  /// (read_cache.hpp). 0 disables caching: every ReadSince materializes
  /// a fresh slice (the cold path the cache exists to avoid).
  std::size_t read_cache_slices = 64;
  /// Requests whose total stage time is >= this are kept in the server's
  /// slow-trace ring and logged (obs/trace.hpp). 0 disables slow-request
  /// tracing (the all-requests ring still fills).
  std::uint64_t slow_request_ns = 0;
};

/// A fresh, process-unique, nonzero log epoch.
std::uint64_t GenerateEpoch();

class SignatureStore {
 public:
  virtual ~SignatureStore() = default;

  /// Runs the stateful part of ADD validation for an already
  /// authenticated, well-formed signature: day-quota, adjacency, dedup;
  /// on acceptance commits the signature at the next index. `day` is the
  /// caller's clock day, `tops` = TopFrameSet(sig), `content_id` =
  /// sig.ContentId(). The signature is serialized only on acceptance —
  /// rejection paths never pay for ToBytes().
  virtual AddOutcome Add(UserId sender, std::int64_t day,
                         const TopFrameKeys& tops, std::uint64_t content_id,
                         const dimmunix::Signature& sig, TimePoint added_at,
                         const Limits& limits) = 0;

  /// Visits serialized signatures with index in [from, min(upto, size()))
  /// in index order. On the sharded backend this never blocks writers.
  virtual void VisitRange(
      std::uint64_t from, std::uint64_t upto,
      const std::function<void(std::uint64_t index,
                               const std::vector<std::uint8_t>& sig_bytes)>&
          fn) const = 0;

  virtual std::uint64_t size() const = 0;

  // ---- replication (cluster tier) ---------------------------------------

  /// Incremental committed-entry feed: visits entries with index in
  /// [from, min(upto, size())) in index order, with the full stored
  /// metadata (sender, added_at, bytes) replication must ship for the
  /// follower's log to be byte-identical. Same non-blocking guarantees
  /// as VisitRange.
  virtual void VisitEntries(
      std::uint64_t from, std::uint64_t upto,
      const std::function<void(std::uint64_t index,
                               const StoredSignature& entry)>& fn) const = 0;

  /// Log lineage id. Two stores with equal epochs hold byte-identical
  /// prefixes of the same log; the epoch changes only when the log's
  /// identity does (ResetForReplication, loading a file of another
  /// lineage). Lock-free read.
  virtual std::uint64_t epoch() const = 0;

  /// Follower ingest: commits an entry the primary already accepted, at
  /// exactly `index` (which must equal size() — replication is ordered).
  /// Rebuilds the dedup/adjacency state exactly as LoadFromFile does, so
  /// the follower enforces §III-C if it is ever promoted. Returns
  /// kFailedPrecondition on an index gap, kDataLoss if the bytes fail to
  /// parse or duplicate the dedup set (lineage corruption). Safe against
  /// concurrent reads; ingest itself is serialized internally.
  virtual Status ApplyReplicated(std::uint64_t index,
                                 StoredSignature entry) = 0;

  /// Clears the whole store and adopts `new_epoch` — the catch-up path a
  /// follower takes when its lineage diverged from the primary's. This
  /// runs on a LIVE follower: it is safe against concurrent reads (the
  /// sharded backend publishes a fresh log and in-flight scans finish
  /// against the retired one) and serialized against ApplyReplicated.
  /// Only concurrent Add is excluded — followers refuse ADDs anyway.
  virtual void ResetForReplication(std::uint64_t new_epoch) = 0;

  /// Persistence. Saves write DB format v3 (checkpoint.hpp: framed,
  /// checksummed); v1 (seed layout) and v2 (+epoch) files still load.
  virtual Status SaveToFile(const std::string& path) const = 0;
  /// Restart-time only (like the seed's whole-db swap): not safe against
  /// concurrent Add/Visit.
  virtual Status LoadFromFile(const std::string& path) = 0;

  // ---- read/bootstrap performance tier ----------------------------------

  /// Log-identity generation: bumps exactly when the log object the
  /// store serves reads from is replaced (ResetForReplication,
  /// LoadFromFile, InstallSnapshot, Compact) — NOT on Append, which only
  /// extends the same log. The ReadCache keys slices by it, so no slice
  /// built against a retired log is ever served (the RCU-invalidation
  /// argument: swap ⇒ new generation ⇒ whole-table clear on first
  /// access). Lock-free read; always a stable (not mid-swap) value.
  virtual std::uint64_t read_generation() const = 0;

  /// How a ReadSince was satisfied (the server's GET latency buckets).
  enum class ReadPath {
    kCacheHit,     // current slice served as-is, zero entry scans
    kCacheExtend,  // cached prefix reused, only the new suffix scanned
    kColdScan,     // full [from, size()) scan (miss or cache disabled)
  };

  /// Hot GET fast path: the materialized reply slice for entries
  /// [from, size()) — exactly the length-prefixed serialized-signature
  /// region a GET reply carries after its count prefix. Consults the 2Q
  /// cache first; a hit whose upto lags the committed length is extended
  /// (prefix bytes reused, only [upto, size()) scanned). Never blocks
  /// writers on the sharded backend. A cursor at or past the committed
  /// length returns an empty, uncached slice (reported as kCacheHit —
  /// no entries were scanned). Never nullptr.
  virtual std::shared_ptr<const CachedSlice> ReadSince(
      std::uint64_t from, ReadPath* path = nullptr) = 0;

  virtual ReadCache::Stats read_cache_stats() const = 0;

  /// Copy of the committed prefix (entries [0, size()) with superseded
  /// flags folded in) — the checkpoint input. On the sharded backend this
  /// reads the immutable committed prefix without blocking writers.
  virtual std::vector<StoredSignature> CaptureSnapshot() const = 0;

  /// Installs a ParseCheckpoint-validated snapshot, replacing the whole
  /// store and adopting `epoch` — the bootstrap path a far-behind
  /// follower takes before replaying only the post-checkpoint log
  /// suffix via ApplyReplicated. Same liveness contract as
  /// ResetForReplication: safe against concurrent reads, serialized
  /// against ingest, concurrent Add excluded.
  virtual void InstallSnapshot(std::uint64_t epoch,
                               std::vector<CheckpointRecord> records) = 0;

  /// Marks committed entry `index` superseded (ReplaceSignature /
  /// FP-disable lineage). Idempotent: true on the first mark, false if
  /// already marked or out of range. The entry keeps streaming in GETs
  /// until Compact — marks never perturb live cursors.
  virtual bool MarkSuperseded(std::uint64_t index) = 0;
  virtual std::uint64_t superseded_count() const = 0;

  /// Drops every superseded entry, renumbering the survivors into a
  /// fresh log with a fresh epoch — compaction is a lineage change, and
  /// deliberately so: client GET cursors are (from + count) positions in
  /// the entry stream, so dropping entries in place would silently
  /// corrupt them, while an epoch bump routes both followers (via the
  /// anti-entropy reset handshake) and clients (via their epoch guard)
  /// through the existing lineage-change machinery. Equivalent to
  /// checkpointing the survivors and installing that checkpoint (the
  /// per-user adjacency state is rebuilt from survivors only), which is
  /// the invariant the store tests pin. Safe against concurrent reads;
  /// concurrent Add excluded, like ResetForReplication. Returns the
  /// number of entries dropped.
  virtual std::uint64_t Compact() = 0;

  static std::unique_ptr<SignatureStore> Create(const StoreOptions& options);
};

}  // namespace communix::store
