// Storage layer of the Communix server.
//
// The server (communix/server.*) is the validation *pipeline*: it decodes
// sender tokens, checks signature well-formedness and maps outcomes to
// wire statuses. Everything stateful — the signature database, the
// per-user rate-limit/adjacency state, the dedup set and persistence —
// lives behind this interface.
//
// Two backends implement the exact same §III-C decision procedure (the
// shared pipeline in RunAddPipeline below is the single source of truth,
// so accept/reject/duplicate outcomes and assigned GET indexes are
// bit-identical for any serialized order of operations):
//
//   kMonolithic — the seed's layout: one shared_mutex over a vector, a
//     set and a user map. Baseline for the Figure-2 comparison bench.
//   kSharded    — SignatureLog (lock-free committed reads) +
//     UserStateShards (per-user lock striping) + DedupIndex. Concurrent
//     ADDs from different users never contend, and GET scans never block
//     ADDs.
//
// The two backends share the on-disk format: a database saved by either
// loads into the other, and clients' incremental GET(k) cursors stay
// valid across restarts. Version 2 of the format appends the log epoch
// to the v1 header (the replication lineage id, see epoch() below);
// v1 files — the seed server's exact layout — still load, adopting a
// fresh epoch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "communix/ids.hpp"
#include "communix/store/signature_log.hpp"
#include "communix/store/user_state_shards.hpp"
#include "dimmunix/signature.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace communix::store {

/// Union of the top-frame keys of every stack in `sig` (adjacency input).
TopFrameKeys TopFrameSet(const dimmunix::Signature& sig);

/// "Some (but not all) top frames in common" (§III-C2): nonempty
/// intersection and the sets are not identical.
bool Adjacent(const TopFrameKeys& a, const TopFrameKeys& b);

/// Outcome of the store-side ADD decision procedure. The server maps
/// these to wire statuses; bad-token and malformed rejections happen
/// before the store is consulted.
enum class AddOutcome {
  kAccepted,
  kDuplicate,
  kRateLimited,
  kAdjacent,
};

/// Knobs of the §III-C checks the store enforces.
struct Limits {
  std::size_t per_user_daily_limit = 10;
  bool adjacency_check_enabled = true;
};

enum class Backend {
  kSharded,
  kMonolithic,
};

struct StoreOptions {
  Backend backend = Backend::kSharded;
  /// Lock stripes for per-user state / the dedup set (sharded backend
  /// only; rounded up to powers of two).
  std::size_t user_shards = 16;
  std::size_t dedup_shards = 16;
  /// Log epoch (replication lineage id); 0 generates a fresh
  /// process-unique nonzero value. Tests pin it for determinism.
  std::uint64_t epoch = 0;
};

/// A fresh, process-unique, nonzero log epoch.
std::uint64_t GenerateEpoch();

class SignatureStore {
 public:
  virtual ~SignatureStore() = default;

  /// Runs the stateful part of ADD validation for an already
  /// authenticated, well-formed signature: day-quota, adjacency, dedup;
  /// on acceptance commits the signature at the next index. `day` is the
  /// caller's clock day, `tops` = TopFrameSet(sig), `content_id` =
  /// sig.ContentId(). The signature is serialized only on acceptance —
  /// rejection paths never pay for ToBytes().
  virtual AddOutcome Add(UserId sender, std::int64_t day,
                         const TopFrameKeys& tops, std::uint64_t content_id,
                         const dimmunix::Signature& sig, TimePoint added_at,
                         const Limits& limits) = 0;

  /// Visits serialized signatures with index in [from, min(upto, size()))
  /// in index order. On the sharded backend this never blocks writers.
  virtual void VisitRange(
      std::uint64_t from, std::uint64_t upto,
      const std::function<void(std::uint64_t index,
                               const std::vector<std::uint8_t>& sig_bytes)>&
          fn) const = 0;

  virtual std::uint64_t size() const = 0;

  // ---- replication (cluster tier) ---------------------------------------

  /// Incremental committed-entry feed: visits entries with index in
  /// [from, min(upto, size())) in index order, with the full stored
  /// metadata (sender, added_at, bytes) replication must ship for the
  /// follower's log to be byte-identical. Same non-blocking guarantees
  /// as VisitRange.
  virtual void VisitEntries(
      std::uint64_t from, std::uint64_t upto,
      const std::function<void(std::uint64_t index,
                               const StoredSignature& entry)>& fn) const = 0;

  /// Log lineage id. Two stores with equal epochs hold byte-identical
  /// prefixes of the same log; the epoch changes only when the log's
  /// identity does (ResetForReplication, loading a file of another
  /// lineage). Lock-free read.
  virtual std::uint64_t epoch() const = 0;

  /// Follower ingest: commits an entry the primary already accepted, at
  /// exactly `index` (which must equal size() — replication is ordered).
  /// Rebuilds the dedup/adjacency state exactly as LoadFromFile does, so
  /// the follower enforces §III-C if it is ever promoted. Returns
  /// kFailedPrecondition on an index gap, kDataLoss if the bytes fail to
  /// parse or duplicate the dedup set (lineage corruption). Safe against
  /// concurrent reads; ingest itself is serialized internally.
  virtual Status ApplyReplicated(std::uint64_t index,
                                 StoredSignature entry) = 0;

  /// Clears the whole store and adopts `new_epoch` — the catch-up path a
  /// follower takes when its lineage diverged from the primary's. This
  /// runs on a LIVE follower: it is safe against concurrent reads (the
  /// sharded backend publishes a fresh log and in-flight scans finish
  /// against the retired one) and serialized against ApplyReplicated.
  /// Only concurrent Add is excluded — followers refuse ADDs anyway.
  virtual void ResetForReplication(std::uint64_t new_epoch) = 0;

  /// Persistence, format-compatible with the seed server's files.
  virtual Status SaveToFile(const std::string& path) const = 0;
  /// Restart-time only (like the seed's whole-db swap): not safe against
  /// concurrent Add/Visit.
  virtual Status LoadFromFile(const std::string& path) = 0;

  static std::unique_ptr<SignatureStore> Create(const StoreOptions& options);
};

}  // namespace communix::store
