#include "communix/store/signature_log.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>

namespace communix::store {

struct SignatureLog::Segment {
  std::array<StoredSignature, kSegmentSize> slots;
  /// Superseded side-flags, one per slot. Kept apart from the entry so a
  /// mark never writes memory a lock-free scan is reading.
  std::array<std::atomic<bool>, kSegmentSize> superseded{};
};

SignatureLog::SignatureLog()
    : segments_(new std::atomic<Segment*>[kMaxSegments]) {
  for (std::size_t i = 0; i < kMaxSegments; ++i) {
    segments_[i].store(nullptr, std::memory_order_relaxed);
  }
}

SignatureLog::~SignatureLog() {
  for (std::size_t i = 0; i < kMaxSegments; ++i) {
    delete segments_[i].load(std::memory_order_relaxed);
  }
}

StoredSignature* SignatureLog::SlotForAppend(std::uint64_t index) {
  if (index >= kCapacity) {
    std::fprintf(stderr, "SignatureLog: capacity (%llu) exhausted\n",
                 static_cast<unsigned long long>(kCapacity));
    std::abort();
  }
  const std::size_t seg = static_cast<std::size_t>(index >> kSegmentBits);
  Segment* segment = segments_[seg].load(std::memory_order_relaxed);
  if (segment == nullptr) {
    segment = new Segment();
    // Release so a reader that chases this pointer after the acquiring
    // load of published_ sees a fully constructed segment.
    segments_[seg].store(segment, std::memory_order_release);
  }
  return &segment->slots[index & (kSegmentSize - 1)];
}

std::uint64_t SignatureLog::Append(StoredSignature entry) {
  std::lock_guard lock(append_mu_);
  const std::uint64_t index = published_.load(std::memory_order_relaxed);
  *SlotForAppend(index) = std::move(entry);
  // Publish: every write above happens-before a reader's acquire of the
  // new length.
  published_.store(index + 1, std::memory_order_release);
  return index;
}

const StoredSignature& SignatureLog::At(std::uint64_t index) const {
  const std::size_t seg = static_cast<std::size_t>(index >> kSegmentBits);
  Segment* segment = segments_[seg].load(std::memory_order_acquire);
  return segment->slots[index & (kSegmentSize - 1)];
}

void SignatureLog::Visit(
    std::uint64_t from, std::uint64_t upto,
    const std::function<void(std::uint64_t, const StoredSignature&)>& fn)
    const {
  const std::uint64_t n = std::min(upto, size());
  std::uint64_t i = from;
  while (i < n) {
    // One segment-pointer chase per segment. The per-entry At() loop
    // this replaces cost an acquire load (a cache-miss-prone indirection
    // on the shared atomic array) for every single entry — measurable as
    // the sharded backend losing to the monolithic contiguous-vector
    // scan in the fig2 `compare --with-scans` run.
    const std::size_t seg = static_cast<std::size_t>(i >> kSegmentBits);
    const Segment* segment = segments_[seg].load(std::memory_order_acquire);
    const std::uint64_t seg_end =
        std::min<std::uint64_t>(n, (static_cast<std::uint64_t>(seg) + 1)
                                       << kSegmentBits);
    for (; i < seg_end; ++i) {
      fn(i, segment->slots[i & (kSegmentSize - 1)]);
    }
  }
}

bool SignatureLog::MarkSuperseded(std::uint64_t index) {
  const std::size_t seg = static_cast<std::size_t>(index >> kSegmentBits);
  Segment* segment = segments_[seg].load(std::memory_order_acquire);
  const bool first = !segment->superseded[index & (kSegmentSize - 1)].exchange(
      true, std::memory_order_acq_rel);
  if (first) superseded_.fetch_add(1, std::memory_order_acq_rel);
  return first;
}

bool SignatureLog::IsSuperseded(std::uint64_t index) const {
  const std::size_t seg = static_cast<std::size_t>(index >> kSegmentBits);
  const Segment* segment = segments_[seg].load(std::memory_order_acquire);
  return segment->superseded[index & (kSegmentSize - 1)].load(
      std::memory_order_acquire);
}

void SignatureLog::Reset(std::vector<StoredSignature> entries) {
  std::lock_guard lock(append_mu_);
  published_.store(0, std::memory_order_release);
  superseded_.store(0, std::memory_order_release);
  for (std::size_t i = 0; i < kMaxSegments; ++i) {
    delete segments_[i].load(std::memory_order_relaxed);
    segments_[i].store(nullptr, std::memory_order_relaxed);
  }
  std::uint64_t index = 0;
  std::uint64_t marked = 0;
  for (auto& e : entries) {
    const bool superseded = e.superseded;
    *SlotForAppend(index) = std::move(e);
    if (superseded) {
      const std::size_t seg = static_cast<std::size_t>(index >> kSegmentBits);
      segments_[seg].load(std::memory_order_relaxed)
          ->superseded[index & (kSegmentSize - 1)]
          .store(true, std::memory_order_relaxed);
      ++marked;
    }
    ++index;
  }
  superseded_.store(marked, std::memory_order_release);
  published_.store(index, std::memory_order_release);
}

}  // namespace communix::store
