#include "communix/store/signature_log.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>

namespace communix::store {

struct SignatureLog::Segment {
  std::array<StoredSignature, kSegmentSize> slots;
};

SignatureLog::SignatureLog()
    : segments_(new std::atomic<Segment*>[kMaxSegments]) {
  for (std::size_t i = 0; i < kMaxSegments; ++i) {
    segments_[i].store(nullptr, std::memory_order_relaxed);
  }
}

SignatureLog::~SignatureLog() {
  for (std::size_t i = 0; i < kMaxSegments; ++i) {
    delete segments_[i].load(std::memory_order_relaxed);
  }
}

StoredSignature* SignatureLog::SlotForAppend(std::uint64_t index) {
  if (index >= kCapacity) {
    std::fprintf(stderr, "SignatureLog: capacity (%llu) exhausted\n",
                 static_cast<unsigned long long>(kCapacity));
    std::abort();
  }
  const std::size_t seg = static_cast<std::size_t>(index >> kSegmentBits);
  Segment* segment = segments_[seg].load(std::memory_order_relaxed);
  if (segment == nullptr) {
    segment = new Segment();
    // Release so a reader that chases this pointer after the acquiring
    // load of published_ sees a fully constructed segment.
    segments_[seg].store(segment, std::memory_order_release);
  }
  return &segment->slots[index & (kSegmentSize - 1)];
}

std::uint64_t SignatureLog::Append(StoredSignature entry) {
  std::lock_guard lock(append_mu_);
  const std::uint64_t index = published_.load(std::memory_order_relaxed);
  *SlotForAppend(index) = std::move(entry);
  // Publish: every write above happens-before a reader's acquire of the
  // new length.
  published_.store(index + 1, std::memory_order_release);
  return index;
}

const StoredSignature& SignatureLog::At(std::uint64_t index) const {
  const std::size_t seg = static_cast<std::size_t>(index >> kSegmentBits);
  Segment* segment = segments_[seg].load(std::memory_order_acquire);
  return segment->slots[index & (kSegmentSize - 1)];
}

void SignatureLog::Visit(
    std::uint64_t from, std::uint64_t upto,
    const std::function<void(std::uint64_t, const StoredSignature&)>& fn)
    const {
  const std::uint64_t n = std::min(upto, size());
  for (std::uint64_t i = from; i < n; ++i) {
    fn(i, At(i));
  }
}

void SignatureLog::Reset(std::vector<StoredSignature> entries) {
  std::lock_guard lock(append_mu_);
  published_.store(0, std::memory_order_release);
  for (std::size_t i = 0; i < kMaxSegments; ++i) {
    delete segments_[i].load(std::memory_order_relaxed);
    segments_[i].store(nullptr, std::memory_order_relaxed);
  }
  std::uint64_t index = 0;
  for (auto& e : entries) {
    *SlotForAppend(index) = std::move(e);
    ++index;
  }
  published_.store(index, std::memory_order_release);
}

}  // namespace communix::store
