// Lock-striped content-id dedup set.
//
// Exact-duplicate detection (the server's kAlreadyExists path) needs a
// global membership test, but content ids are uniformly distributed
// 64-bit hashes, so striping the set N ways keeps the critical section a
// single unordered_set probe and makes concurrent ADDs of *different*
// signatures contention-free. TryInsert is atomic per id: exactly one of
// two racing inserts of the same content id wins, matching the
// serialization the seed's global lock provided.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace communix::store {

class DedupIndex {
 public:
  /// `num_shards` is rounded up to a power of two (min 1).
  explicit DedupIndex(std::size_t num_shards) {
    std::size_t n = 1;
    while (n < num_shards) n <<= 1;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  DedupIndex(const DedupIndex&) = delete;
  DedupIndex& operator=(const DedupIndex&) = delete;

  /// Inserts `content_id`; false if it was already present.
  bool TryInsert(std::uint64_t content_id) {
    Shard& shard = ShardFor(content_id);
    std::lock_guard lock(shard.mu);
    return shard.ids.insert(content_id).second;
  }

  bool Contains(std::uint64_t content_id) const {
    const Shard& shard = ShardFor(content_id);
    std::lock_guard lock(shard.mu);
    return shard.ids.count(content_id) > 0;
  }

  /// Drops everything (LoadFromFile path; restart-time only).
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard lock(shard->mu);
      shard->ids.clear();
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<std::uint64_t> ids;
  };

  Shard& ShardFor(std::uint64_t content_id) const {
    // Content ids are already hashes; the low bits are uniform enough.
    return *shards_[static_cast<std::size_t>(content_id) &
                    (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace communix::store
