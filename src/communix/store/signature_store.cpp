#include "communix/store/signature_store.hpp"

#include <filesystem>
#include <fstream>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "communix/store/dedup_index.hpp"
#include "communix/store/signature_log.hpp"
#include "util/serde.hpp"

namespace communix::store {

TopFrameKeys TopFrameSet(const dimmunix::Signature& sig) {
  TopFrameKeys tops;
  for (const auto& e : sig.entries()) {
    if (!e.outer.empty()) tops.insert(e.outer.TopKey());
    if (!e.inner.empty()) tops.insert(e.inner.TopKey());
  }
  return tops;
}

bool Adjacent(const TopFrameKeys& a, const TopFrameKeys& b) {
  if (a == b) return false;
  for (std::uint64_t k : a) {
    if (b.count(k) > 0) return true;
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Shared §III-C decision procedure.
//
// Both backends run exactly this sequence against the caller's locked
// view of the sender's UserState; only the locking around it differs.
// Order matters and matches the seed server: the daily quota counts
// *processed* signatures (so adjacency/duplicate rejections still consume
// quota), adjacency is checked before dedup, and the commit records the
// top-frame set only for accepted signatures.
// ---------------------------------------------------------------------------
template <typename TryInsertDedup, typename Commit>
AddOutcome RunAddPipeline(UserState& state, std::int64_t day,
                          const TopFrameKeys& tops, const Limits& limits,
                          TryInsertDedup&& try_insert_dedup, Commit&& commit) {
  if (state.day != day) {
    state.day = day;
    state.processed_today = 0;
  }
  if (state.processed_today >= limits.per_user_daily_limit) {
    return AddOutcome::kRateLimited;
  }
  ++state.processed_today;

  if (limits.adjacency_check_enabled) {
    for (const auto& prior : state.accepted_top_sets) {
      if (Adjacent(prior, tops)) return AddOutcome::kAdjacent;
    }
  }
  if (!try_insert_dedup()) return AddOutcome::kDuplicate;
  commit();
  state.accepted_top_sets.push_back(tops);
  return AddOutcome::kAccepted;
}

// ---------------------------------------------------------------------------
// Persistence (format identical to the seed server's SaveToFile).
// ---------------------------------------------------------------------------
constexpr std::uint32_t kDbMagic = 0x434D5342;  // "CMSB"
constexpr std::uint32_t kDbVersion = 1;

struct LoadedRecord {
  StoredSignature entry;
  TopFrameKeys tops;
};

Status WriteDbFile(const std::string& path, const BinaryWriter& w) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Error(ErrorCode::kUnavailable, "cannot open " + tmp);
    }
    out.write(reinterpret_cast<const char*>(w.data().data()),
              static_cast<std::streamsize>(w.size()));
    if (!out) {
      return Status::Error(ErrorCode::kUnavailable, "short write " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Error(ErrorCode::kUnavailable, "rename: " + ec.message());
  }
  return Status::Ok();
}

void WriteRecord(BinaryWriter& w, const StoredSignature& s) {
  w.WriteU64(s.sender);
  w.WriteI64(s.added_at);
  w.WriteBytes(std::span<const std::uint8_t>(s.bytes.data(), s.bytes.size()));
}

Status ParseDbFile(const std::string& path, std::vector<LoadedRecord>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Error(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  BinaryReader r(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  if (r.ReadU32() != kDbMagic || r.ReadU32() != kDbVersion) {
    return Status::Error(ErrorCode::kDataLoss, "bad server DB header");
  }
  const std::uint32_t count = r.ReadU32();
  out.clear();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    LoadedRecord rec;
    rec.entry.sender = r.ReadU64();
    rec.entry.added_at = r.ReadI64();
    rec.entry.bytes = r.ReadBytes();
    if (!r.ok()) {
      return Status::Error(ErrorCode::kDataLoss, "corrupt server DB record");
    }
    auto sig = dimmunix::Signature::FromBytes(std::span<const std::uint8_t>(
        rec.entry.bytes.data(), rec.entry.bytes.size()));
    if (!sig) {
      return Status::Error(ErrorCode::kDataLoss,
                           "stored signature fails to parse");
    }
    rec.entry.content_id = sig->ContentId();
    // Rebuild the adjacency state so the per-user restriction keeps
    // holding across restarts. The daily quota intentionally resets.
    rec.tops = TopFrameSet(*sig);
    out.push_back(std::move(rec));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Monolithic backend: the seed server's storage, verbatim layout. One
// shared_mutex guards everything; kept as the Figure-2 baseline and as
// the reference implementation for the equivalence property test.
// ---------------------------------------------------------------------------
class MonolithicStore final : public SignatureStore {
 public:
  AddOutcome Add(UserId sender, std::int64_t day, const TopFrameKeys& tops,
                 std::uint64_t content_id, const dimmunix::Signature& sig,
                 TimePoint added_at, const Limits& limits) override {
    std::unique_lock lock(mu_);
    return RunAddPipeline(
        users_[sender], day, tops, limits,
        [&] { return content_ids_.insert(content_id).second; },
        [&] {
          StoredSignature stored;
          stored.bytes = sig.ToBytes();
          stored.content_id = content_id;
          stored.sender = sender;
          stored.added_at = added_at;
          db_.push_back(std::move(stored));
        });
  }

  void VisitRange(std::uint64_t from, std::uint64_t upto,
                  const std::function<void(
                      std::uint64_t, const std::vector<std::uint8_t>&)>& fn)
      const override {
    std::shared_lock lock(mu_);
    const std::uint64_t n = std::min<std::uint64_t>(upto, db_.size());
    for (std::uint64_t i = from; i < n; ++i) {
      fn(i, db_[i].bytes);
    }
  }

  std::uint64_t size() const override {
    std::shared_lock lock(mu_);
    return db_.size();
  }

  Status SaveToFile(const std::string& path) const override {
    BinaryWriter w;
    {
      std::shared_lock lock(mu_);
      w.WriteU32(kDbMagic);
      w.WriteU32(kDbVersion);
      w.WriteU32(static_cast<std::uint32_t>(db_.size()));
      for (const StoredSignature& s : db_) WriteRecord(w, s);
    }
    return WriteDbFile(path, w);
  }

  Status LoadFromFile(const std::string& path) override {
    std::vector<LoadedRecord> records;
    if (auto s = ParseDbFile(path, records); !s.ok()) return s;
    std::unique_lock lock(mu_);
    db_.clear();
    content_ids_.clear();
    users_.clear();
    for (auto& rec : records) {
      content_ids_.insert(rec.entry.content_id);
      users_[rec.entry.sender].accepted_top_sets.push_back(
          std::move(rec.tops));
      db_.push_back(std::move(rec.entry));
    }
    return Status::Ok();
  }

 private:
  mutable std::shared_mutex mu_;
  std::vector<StoredSignature> db_;
  std::unordered_set<std::uint64_t> content_ids_;
  std::unordered_map<UserId, UserState> users_;
};

// ---------------------------------------------------------------------------
// Sharded backend. Lock order: user shard -> dedup shard -> append mutex
// (strictly nested inside the pipeline, never the other way), so there is
// no cycle. A duplicate can be reported an instant before the winning
// append is published to readers — the decisions are still identical to
// some serialized order, which is all the monolithic lock guaranteed.
// ---------------------------------------------------------------------------
class ShardedStore final : public SignatureStore {
 public:
  explicit ShardedStore(const StoreOptions& options)
      : users_(options.user_shards), dedup_(options.dedup_shards) {}

  AddOutcome Add(UserId sender, std::int64_t day, const TopFrameKeys& tops,
                 std::uint64_t content_id, const dimmunix::Signature& sig,
                 TimePoint added_at, const Limits& limits) override {
    return users_.With(sender, [&](UserState& state) {
      return RunAddPipeline(
          state, day, tops, limits,
          [&] { return dedup_.TryInsert(content_id); },
          [&] {
            StoredSignature stored;
            stored.bytes = sig.ToBytes();
            stored.content_id = content_id;
            stored.sender = sender;
            stored.added_at = added_at;
            log_.Append(std::move(stored));
          });
    });
  }

  void VisitRange(std::uint64_t from, std::uint64_t upto,
                  const std::function<void(
                      std::uint64_t, const std::vector<std::uint8_t>&)>& fn)
      const override {
    log_.Visit(from, upto, [&](std::uint64_t i, const StoredSignature& s) {
      fn(i, s.bytes);
    });
  }

  std::uint64_t size() const override { return log_.size(); }

  Status SaveToFile(const std::string& path) const override {
    BinaryWriter w;
    // The committed prefix is immutable, so no lock is needed: entries
    // appended after this size() load are simply not part of the save.
    const std::uint64_t n = log_.size();
    w.WriteU32(kDbMagic);
    w.WriteU32(kDbVersion);
    w.WriteU32(static_cast<std::uint32_t>(n));
    log_.Visit(0, n, [&](std::uint64_t, const StoredSignature& s) {
      WriteRecord(w, s);
    });
    return WriteDbFile(path, w);
  }

  Status LoadFromFile(const std::string& path) override {
    std::vector<LoadedRecord> records;
    if (auto s = ParseDbFile(path, records); !s.ok()) return s;
    users_.Clear();
    dedup_.Clear();
    std::vector<StoredSignature> entries;
    entries.reserve(records.size());
    for (auto& rec : records) {
      dedup_.TryInsert(rec.entry.content_id);
      users_.With(rec.entry.sender, [&](UserState& state) {
        state.accepted_top_sets.push_back(std::move(rec.tops));
      });
      entries.push_back(std::move(rec.entry));
    }
    log_.Reset(std::move(entries));
    return Status::Ok();
  }

 private:
  SignatureLog log_;
  UserStateShards users_;
  DedupIndex dedup_;
};

}  // namespace

std::unique_ptr<SignatureStore> SignatureStore::Create(
    const StoreOptions& options) {
  if (options.backend == Backend::kMonolithic) {
    return std::make_unique<MonolithicStore>();
  }
  return std::make_unique<ShardedStore>(options);
}

}  // namespace communix::store
