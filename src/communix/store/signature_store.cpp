#include "communix/store/signature_store.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "communix/store/checkpoint.hpp"
#include "communix/store/dedup_index.hpp"
#include "communix/store/signature_log.hpp"
#include "util/serde.hpp"

namespace communix::store {

std::uint64_t GenerateEpoch() {
  // Random high bits (distinct across processes/restarts) + a process
  // counter (distinct within a process even if the RNG repeats).
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t process_salt = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  const std::uint64_t e =
      process_salt ^ (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  return e == 0 ? 1 : e;
}

TopFrameKeys TopFrameSet(const dimmunix::Signature& sig) {
  TopFrameKeys tops;
  for (const auto& e : sig.entries()) {
    if (!e.outer.empty()) tops.insert(e.outer.TopKey());
    if (!e.inner.empty()) tops.insert(e.inner.TopKey());
  }
  return tops;
}

bool Adjacent(const TopFrameKeys& a, const TopFrameKeys& b) {
  if (a == b) return false;
  for (std::uint64_t k : a) {
    if (b.count(k) > 0) return true;
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Shared §III-C decision procedure.
//
// Both backends run exactly this sequence against the caller's locked
// view of the sender's UserState; only the locking around it differs.
// Order matters and matches the seed server: the daily quota counts
// *processed* signatures (so adjacency/duplicate rejections still consume
// quota), the tenant quota is consumed after the personal one (a sybil
// flood pays per-user budget to probe the tenant limit), adjacency is
// checked before dedup, and the commit records the top-frame set only
// for accepted signatures.
// ---------------------------------------------------------------------------
template <typename TryConsumeTenant, typename TryInsertDedup, typename Commit>
AddOutcome RunAddPipeline(UserState& state, std::int64_t day,
                          const TopFrameKeys& tops, const Limits& limits,
                          TryConsumeTenant&& try_consume_tenant,
                          TryInsertDedup&& try_insert_dedup, Commit&& commit) {
  if (state.day != day) {
    state.day = day;
    state.processed_today = 0;
  }
  if (state.processed_today >= limits.per_user_daily_limit) {
    return AddOutcome::kRateLimited;
  }
  ++state.processed_today;

  if (!try_consume_tenant()) return AddOutcome::kTenantRateLimited;

  if (limits.adjacency_check_enabled) {
    for (const auto& prior : state.accepted_top_sets) {
      if (Adjacent(prior, tops)) return AddOutcome::kAdjacent;
    }
  }
  if (!try_insert_dedup()) return AddOutcome::kDuplicate;
  commit();
  state.accepted_top_sets.push_back(tops);
  return AddOutcome::kAccepted;
}

/// Tenant-quota consumption against the community's day counter
/// (a UserState keyed by community id — only the day/processed_today
/// fields are used). Mirrors the per-user day-reset logic above so both
/// quotas roll over at the same clock day.
bool ConsumeTenantQuota(UserState& tenant, std::int64_t day,
                        const Limits& limits) {
  if (limits.per_tenant_daily_limit == 0) return true;
  if (tenant.day != day) {
    tenant.day = day;
    tenant.processed_today = 0;
  }
  if (tenant.processed_today >= limits.per_tenant_daily_limit) return false;
  ++tenant.processed_today;
  return true;
}

// ---------------------------------------------------------------------------
// Persistence. The format lives in checkpoint.{hpp,cpp} now — saves
// write the framed/checksummed v3 layout (which doubles as the wire
// checkpoint a follower bootstraps from); v1/v2 files still load. This
// file keeps only the file-I/O shell around it.
// ---------------------------------------------------------------------------
Status WriteDbFile(const std::string& path,
                   const std::vector<std::uint8_t>& blob) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Error(ErrorCode::kUnavailable, "cannot open " + tmp);
    }
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) {
      return Status::Error(ErrorCode::kUnavailable, "short write " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Error(ErrorCode::kUnavailable, "rename: " + ec.message());
  }
  return Status::Ok();
}

Status ParseDbFile(const std::string& path, CheckpointData* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Error(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return ParseCheckpoint(
      std::span<const std::uint8_t>(bytes.data(), bytes.size()), out);
}

/// Tops of a store-resident entry (accepted or validated at ingest, so
/// the bytes are known-good; an empty set on the impossible parse
/// failure just weakens adjacency instead of corrupting anything).
TopFrameKeys TopsOfEntry(const StoredSignature& entry) {
  auto sig = dimmunix::Signature::FromBytes(
      std::span<const std::uint8_t>(entry.bytes.data(), entry.bytes.size()));
  return sig ? TopFrameSet(*sig) : TopFrameKeys{};
}

/// Builds the materialized reply slice for [from, n), reusing a cached
/// prefix when one is supplied (the extension path: only [prefix->upto,
/// n) is serialized). `serialize(lo, hi, w)` appends the length-prefixed
/// bytes of entries [lo, hi).
template <typename SerializeRange>
std::shared_ptr<const CachedSlice> BuildSlice(
    std::uint64_t from, std::uint64_t n,
    std::shared_ptr<const CachedSlice> prefix, SerializeRange&& serialize) {
  auto slice = std::make_shared<CachedSlice>();
  slice->from = from;
  slice->upto = n;
  slice->count = static_cast<std::uint32_t>(n - from);
  std::uint64_t scan_from = from;
  if (prefix != nullptr) {
    slice->payload = prefix->payload;  // the shared slice stays immutable
    scan_from = prefix->upto;
  }
  BinaryWriter w;
  serialize(scan_from, n, w);
  slice->payload.insert(slice->payload.end(), w.data().begin(),
                        w.data().end());
  return slice;
}

std::shared_ptr<const CachedSlice> EmptySlice(std::uint64_t from) {
  auto slice = std::make_shared<CachedSlice>();
  slice->from = from;
  slice->upto = from;
  return slice;
}

/// Validates a replicated entry's signature bytes, filling in
/// entry.content_id and producing the adjacency top-set. nullopt if the
/// bytes fail to parse (lineage corruption — the primary only ships
/// entries it accepted, so these bytes must round-trip).
std::optional<TopFrameKeys> DecodeReplicatedEntry(StoredSignature& entry) {
  auto sig = dimmunix::Signature::FromBytes(
      std::span<const std::uint8_t>(entry.bytes.data(), entry.bytes.size()));
  if (!sig) return std::nullopt;
  entry.content_id = sig->ContentId();
  return TopFrameSet(*sig);
}

// ---------------------------------------------------------------------------
// Monolithic backend: the seed server's storage, verbatim layout. One
// shared_mutex guards everything; kept as the Figure-2 baseline and as
// the reference implementation for the equivalence property test.
// ---------------------------------------------------------------------------
class MonolithicStore final : public SignatureStore {
 public:
  explicit MonolithicStore(const StoreOptions& options)
      : cache_(std::max<std::size_t>(options.read_cache_slices, 1)),
        cache_enabled_(options.read_cache_slices > 0),
        epoch_(options.epoch != 0 ? options.epoch : GenerateEpoch()) {}

  AddOutcome Add(UserId sender, std::int64_t day, const TopFrameKeys& tops,
                 std::uint64_t content_id, const dimmunix::Signature& sig,
                 TimePoint added_at, const Limits& limits) override {
    std::unique_lock lock(mu_);
    return RunAddPipeline(
        users_[sender], day, tops, limits,
        [&] {
          return ConsumeTenantQuota(tenants_[CommunityOf(sender)], day,
                                    limits);
        },
        [&] { return content_ids_.insert(content_id).second; },
        [&] {
          StoredSignature stored;
          stored.bytes = sig.ToBytes();
          stored.content_id = content_id;
          stored.sender = sender;
          stored.added_at = added_at;
          db_.push_back(std::move(stored));
        });
  }

  void VisitRange(std::uint64_t from, std::uint64_t upto,
                  const std::function<void(
                      std::uint64_t, const std::vector<std::uint8_t>&)>& fn)
      const override {
    std::shared_lock lock(mu_);
    const std::uint64_t n = std::min<std::uint64_t>(upto, db_.size());
    for (std::uint64_t i = from; i < n; ++i) {
      fn(i, db_[i].bytes);
    }
  }

  std::uint64_t size() const override {
    std::shared_lock lock(mu_);
    return db_.size();
  }

  void VisitEntries(std::uint64_t from, std::uint64_t upto,
                    const std::function<void(
                        std::uint64_t, const StoredSignature&)>& fn)
      const override {
    std::shared_lock lock(mu_);
    const std::uint64_t n = std::min<std::uint64_t>(upto, db_.size());
    for (std::uint64_t i = from; i < n; ++i) {
      fn(i, db_[i]);
    }
  }

  std::uint64_t epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }

  Status ApplyReplicated(std::uint64_t index, StoredSignature entry) override {
    auto tops = DecodeReplicatedEntry(entry);
    if (!tops) {
      return Status::Error(ErrorCode::kDataLoss,
                           "replicated signature fails to parse");
    }
    std::unique_lock lock(mu_);
    if (index != db_.size()) {
      return Status::Error(ErrorCode::kFailedPrecondition,
                           "replication index gap");
    }
    if (!content_ids_.insert(entry.content_id).second) {
      return Status::Error(ErrorCode::kDataLoss,
                           "replicated entry duplicates the dedup set");
    }
    users_[entry.sender].accepted_top_sets.push_back(std::move(*tops));
    db_.push_back(std::move(entry));
    return Status::Ok();
  }

  void ResetForReplication(std::uint64_t new_epoch) override {
    std::unique_lock lock(mu_);
    db_.clear();
    content_ids_.clear();
    users_.clear();
    tenants_.clear();
    superseded_count_ = 0;
    epoch_.store(new_epoch, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
  }

  Status SaveToFile(const std::string& path) const override {
    std::vector<StoredSignature> snapshot;
    std::uint64_t e = 0;
    {
      std::shared_lock lock(mu_);
      snapshot = db_;
      e = epoch_.load(std::memory_order_relaxed);
    }
    return WriteDbFile(path, SerializeCheckpoint(e, snapshot));
  }

  Status LoadFromFile(const std::string& path) override {
    CheckpointData data;
    if (auto s = ParseDbFile(path, &data); !s.ok()) return s;
    InstallSnapshot(data.epoch != 0 ? data.epoch : GenerateEpoch(),
                    std::move(data.records));
    return Status::Ok();
  }

  std::uint64_t read_generation() const override {
    return generation_.load(std::memory_order_acquire);
  }

  std::shared_ptr<const CachedSlice> ReadSince(std::uint64_t from,
                                               ReadPath* path) override {
    std::shared_lock lock(mu_);
    const std::uint64_t n = db_.size();
    if (from >= n) {
      if (path != nullptr) *path = ReadPath::kCacheHit;
      return EmptySlice(from);
    }
    const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
    std::shared_ptr<const CachedSlice> prefix;
    if (cache_enabled_) {
      if (auto hit = cache_.Lookup(gen, from); hit != nullptr) {
        if (hit->upto == n) {
          if (path != nullptr) *path = ReadPath::kCacheHit;
          return hit;
        }
        prefix = std::move(hit);
      }
    }
    if (path != nullptr) {
      *path = prefix != nullptr ? ReadPath::kCacheExtend : ReadPath::kColdScan;
    }
    auto slice = BuildSlice(
        from, n, std::move(prefix),
        [&](std::uint64_t lo, std::uint64_t hi, BinaryWriter& w) {
          for (std::uint64_t i = lo; i < hi; ++i) {
            w.WriteBytes(std::span<const std::uint8_t>(db_[i].bytes.data(),
                                                       db_[i].bytes.size()));
          }
        });
    if (cache_enabled_) cache_.Insert(gen, slice);
    return slice;
  }

  ReadCache::Stats read_cache_stats() const override {
    return cache_.GetStats();
  }

  std::vector<StoredSignature> CaptureSnapshot() const override {
    std::shared_lock lock(mu_);
    return db_;
  }

  void InstallSnapshot(std::uint64_t epoch,
                       std::vector<CheckpointRecord> records) override {
    std::unique_lock lock(mu_);
    db_.clear();
    content_ids_.clear();
    users_.clear();
    tenants_.clear();
    superseded_count_ = 0;
    db_.reserve(records.size());
    for (auto& rec : records) {
      content_ids_.insert(rec.entry.content_id);
      users_[rec.entry.sender].accepted_top_sets.push_back(
          std::move(rec.tops));
      if (rec.entry.superseded) ++superseded_count_;
      db_.push_back(std::move(rec.entry));
    }
    epoch_.store(epoch, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
  }

  bool MarkSuperseded(std::uint64_t index) override {
    std::unique_lock lock(mu_);
    if (index >= db_.size() || db_[index].superseded) return false;
    db_[index].superseded = true;
    ++superseded_count_;
    return true;
  }

  std::uint64_t superseded_count() const override {
    std::shared_lock lock(mu_);
    return superseded_count_;
  }

  std::uint64_t Compact() override {
    std::unique_lock lock(mu_);
    const std::uint64_t before = db_.size();
    std::vector<StoredSignature> survivors;
    survivors.reserve(before);
    for (StoredSignature& s : db_) {
      if (!s.superseded) survivors.push_back(std::move(s));
    }
    const std::uint64_t dropped = before - survivors.size();
    db_ = std::move(survivors);
    content_ids_.clear();
    users_.clear();
    tenants_.clear();
    superseded_count_ = 0;
    // Derived state is rebuilt from survivors only, so the compacted
    // store is indistinguishable from one bootstrapped from its own
    // checkpoint (the invariant the store tests pin). Dropping a
    // replaced signature's content id deliberately re-opens dedup for
    // its replacement lineage.
    for (const StoredSignature& s : db_) {
      content_ids_.insert(s.content_id);
      users_[s.sender].accepted_top_sets.push_back(TopsOfEntry(s));
    }
    epoch_.store(GenerateEpoch(), std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
    return dropped;
  }

 private:
  mutable std::shared_mutex mu_;
  std::vector<StoredSignature> db_;
  std::unordered_set<std::uint64_t> content_ids_;
  std::unordered_map<UserId, UserState> users_;
  /// Per-community day quota (only the day/processed_today fields are
  /// used). Reset wherever users_ is: quota state is runtime-only, like
  /// the per-user counters.
  std::unordered_map<CommunityId, UserState> tenants_;
  std::uint64_t superseded_count_ = 0;
  mutable ReadCache cache_;
  const bool cache_enabled_;
  std::atomic<std::uint64_t> epoch_;
  std::atomic<std::uint64_t> generation_{0};
};

// ---------------------------------------------------------------------------
// Sharded backend. Lock order: user shard -> dedup shard -> append mutex
// (strictly nested inside the pipeline, never the other way), so there is
// no cycle. A duplicate can be reported an instant before the winning
// append is published to readers — the decisions are still identical to
// some serialized order, which is all the monolithic lock guaranteed.
// ---------------------------------------------------------------------------
// The log is published through an atomic shared_ptr (the same RCU
// pattern as the dimmunix avoidance index): readers snapshot the
// pointer and walk that log lock-free, so replacing the whole database
// (ResetForReplication on a live follower, LoadFromFile) installs a
// fresh log object and simply lets in-flight readers finish against the
// retired one — no reader ever observes a log being torn down or its
// indexes being reused.
class ShardedStore final : public SignatureStore {
 public:
  explicit ShardedStore(const StoreOptions& options)
      : users_(options.user_shards),
        tenants_(options.user_shards),
        dedup_(options.dedup_shards),
        log_(std::make_shared<SignatureLog>()),
        cache_(std::max<std::size_t>(options.read_cache_slices, 1)),
        cache_enabled_(options.read_cache_slices > 0),
        epoch_(options.epoch != 0 ? options.epoch : GenerateEpoch()) {}

  AddOutcome Add(UserId sender, std::int64_t day, const TopFrameKeys& tops,
                 std::uint64_t content_id, const dimmunix::Signature& sig,
                 TimePoint added_at, const Limits& limits) override {
    const std::shared_ptr<SignatureLog> log = Log();
    return users_.With(sender, [&](UserState& state) {
      return RunAddPipeline(
          state, day, tops, limits,
          [&] {
            // Nested stripe acquisition across two DISTINCT shard
            // structures, always user → tenant — no cycle. Different
            // tenants stripe independently, so the multi-tenant hot
            // path stays contention-free across communities.
            return tenants_.With(CommunityOf(sender), [&](UserState& t) {
              return ConsumeTenantQuota(t, day, limits);
            });
          },
          [&] { return dedup_.TryInsert(content_id); },
          [&] {
            StoredSignature stored;
            stored.bytes = sig.ToBytes();
            stored.content_id = content_id;
            stored.sender = sender;
            stored.added_at = added_at;
            log->Append(std::move(stored));
          });
    });
  }

  void VisitRange(std::uint64_t from, std::uint64_t upto,
                  const std::function<void(
                      std::uint64_t, const std::vector<std::uint8_t>&)>& fn)
      const override {
    Log()->Visit(from, upto, [&](std::uint64_t i, const StoredSignature& s) {
      fn(i, s.bytes);
    });
  }

  std::uint64_t size() const override { return Log()->size(); }

  void VisitEntries(std::uint64_t from, std::uint64_t upto,
                    const std::function<void(
                        std::uint64_t, const StoredSignature&)>& fn)
      const override {
    Log()->Visit(from, upto, fn);
  }

  std::uint64_t epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }

  Status ApplyReplicated(std::uint64_t index, StoredSignature entry) override {
    auto tops = DecodeReplicatedEntry(entry);
    if (!tops) {
      return Status::Error(ErrorCode::kDataLoss,
                           "replicated signature fails to parse");
    }
    // Ingest is ordered (one entry at exactly size()), so serialize it
    // (also against ResetForReplication); lock-free GET scans stay
    // concurrent with the log append inside.
    std::lock_guard ingest(ingest_mu_);
    const std::shared_ptr<SignatureLog> log = Log();
    if (index != log->size()) {
      return Status::Error(ErrorCode::kFailedPrecondition,
                           "replication index gap");
    }
    if (!dedup_.TryInsert(entry.content_id)) {
      return Status::Error(ErrorCode::kDataLoss,
                           "replicated entry duplicates the dedup set");
    }
    users_.With(entry.sender, [&](UserState& state) {
      state.accepted_top_sets.push_back(std::move(*tops));
    });
    log->Append(std::move(entry));
    return Status::Ok();
  }

  void ResetForReplication(std::uint64_t new_epoch) override {
    std::lock_guard ingest(ingest_mu_);
    users_.Clear();
    tenants_.Clear();
    dedup_.Clear();
    // Fresh log object: concurrent GET scans keep reading the retired
    // one (kept alive by their shared_ptr snapshots) to completion.
    PublishLogLocked(std::make_shared<SignatureLog>(), new_epoch);
  }

  Status SaveToFile(const std::string& path) const override {
    // The snapshot log's committed prefix is immutable, so no lock is
    // needed: entries appended after the size() load inside are simply
    // not part of the save.
    return WriteDbFile(
        path, SerializeCheckpoint(epoch(), CaptureSnapshot()));
  }

  Status LoadFromFile(const std::string& path) override {
    CheckpointData data;
    if (auto s = ParseDbFile(path, &data); !s.ok()) return s;
    InstallSnapshot(data.epoch != 0 ? data.epoch : GenerateEpoch(),
                    std::move(data.records));
    return Status::Ok();
  }

  std::uint64_t read_generation() const override { return ReadView().gen; }

  std::shared_ptr<const CachedSlice> ReadSince(std::uint64_t from,
                                               ReadPath* path) override {
    const View view = ReadView();
    const std::uint64_t n = view.log->size();
    if (from >= n) {
      if (path != nullptr) *path = ReadPath::kCacheHit;
      return EmptySlice(from);
    }
    std::shared_ptr<const CachedSlice> prefix;
    if (cache_enabled_) {
      if (auto hit = cache_.Lookup(view.gen, from); hit != nullptr) {
        if (hit->upto == n) {
          if (path != nullptr) *path = ReadPath::kCacheHit;
          return hit;
        }
        prefix = std::move(hit);
      }
    }
    if (path != nullptr) {
      *path = prefix != nullptr ? ReadPath::kCacheExtend : ReadPath::kColdScan;
    }
    auto slice = BuildSlice(
        from, n, std::move(prefix),
        [&](std::uint64_t lo, std::uint64_t hi, BinaryWriter& w) {
          view.log->Visit(lo, hi,
                          [&](std::uint64_t, const StoredSignature& s) {
                            w.WriteBytes(std::span<const std::uint8_t>(
                                s.bytes.data(), s.bytes.size()));
                          });
        });
    // An insert that lost a race with a log swap is rejected by the
    // cache's generation check — a stale-log slice is never admitted.
    if (cache_enabled_) cache_.Insert(view.gen, slice);
    return slice;
  }

  ReadCache::Stats read_cache_stats() const override {
    return cache_.GetStats();
  }

  std::vector<StoredSignature> CaptureSnapshot() const override {
    const std::shared_ptr<SignatureLog> log = Log();
    const std::uint64_t n = log->size();
    std::vector<StoredSignature> snapshot;
    snapshot.reserve(n);
    log->Visit(0, n, [&](std::uint64_t i, const StoredSignature& s) {
      snapshot.push_back(s);
      snapshot.back().superseded = log->IsSuperseded(i);
    });
    return snapshot;
  }

  void InstallSnapshot(std::uint64_t epoch,
                       std::vector<CheckpointRecord> records) override {
    std::lock_guard ingest(ingest_mu_);
    users_.Clear();
    tenants_.Clear();
    dedup_.Clear();
    std::vector<StoredSignature> entries;
    entries.reserve(records.size());
    for (auto& rec : records) {
      dedup_.TryInsert(rec.entry.content_id);
      users_.With(rec.entry.sender, [&](UserState& state) {
        state.accepted_top_sets.push_back(std::move(rec.tops));
      });
      entries.push_back(std::move(rec.entry));
    }
    // Populate a private log, then publish it whole.
    auto loaded = std::make_shared<SignatureLog>();
    loaded->Reset(std::move(entries));
    PublishLogLocked(std::move(loaded), epoch);
  }

  bool MarkSuperseded(std::uint64_t index) override {
    const std::shared_ptr<SignatureLog> log = Log();
    if (index >= log->size()) return false;
    return log->MarkSuperseded(index);
  }

  std::uint64_t superseded_count() const override {
    return Log()->superseded_count();
  }

  std::uint64_t Compact() override {
    std::lock_guard ingest(ingest_mu_);
    const std::shared_ptr<SignatureLog> log = Log();
    const std::uint64_t n = log->size();
    std::vector<StoredSignature> survivors;
    survivors.reserve(n);
    log->Visit(0, n, [&](std::uint64_t i, const StoredSignature& s) {
      if (!log->IsSuperseded(i)) survivors.push_back(s);
    });
    const std::uint64_t dropped = n - survivors.size();
    users_.Clear();
    tenants_.Clear();
    dedup_.Clear();
    // Derived state is rebuilt from survivors only, so the compacted
    // store is indistinguishable from one bootstrapped from its own
    // checkpoint (the invariant the store tests pin). Dropping a
    // replaced signature's content id deliberately re-opens dedup for
    // its replacement lineage.
    for (const StoredSignature& s : survivors) {
      dedup_.TryInsert(s.content_id);
      users_.With(s.sender, [&](UserState& state) {
        state.accepted_top_sets.push_back(TopsOfEntry(s));
      });
    }
    auto compacted = std::make_shared<SignatureLog>();
    compacted->Reset(std::move(survivors));
    PublishLogLocked(std::move(compacted), GenerateEpoch());
    return dropped;
  }

 private:
  std::shared_ptr<SignatureLog> Log() const {
    return log_.load(std::memory_order_acquire);
  }

  /// A consistent (generation, log) pair, seqlock-style: the swap path
  /// makes the generation odd, stores the log, then makes it even, so a
  /// reader that saw a torn combination (old generation, new log or
  /// vice versa) observes either an odd value or two different values
  /// and retries. Same generation ⟺ same log object.
  struct View {
    std::uint64_t gen;
    std::shared_ptr<SignatureLog> log;
  };
  View ReadView() const {
    for (;;) {
      const std::uint64_t g1 = gen_.load(std::memory_order_acquire);
      if ((g1 & 1) != 0) {
        std::this_thread::yield();
        continue;
      }
      std::shared_ptr<SignatureLog> log = Log();
      if (gen_.load(std::memory_order_acquire) == g1) {
        return View{g1, std::move(log)};
      }
    }
  }

  /// Swaps the published log + epoch under the seqlock. Caller holds
  /// ingest_mu_ (swaps are serialized; the seqlock only shields the
  /// lock-free readers).
  void PublishLogLocked(std::shared_ptr<SignatureLog> log,
                        std::uint64_t new_epoch) {
    gen_.fetch_add(1, std::memory_order_acq_rel);  // odd: swap in progress
    log_.store(std::move(log), std::memory_order_release);
    epoch_.store(new_epoch, std::memory_order_release);
    gen_.fetch_add(1, std::memory_order_release);  // even: next generation
  }

  UserStateShards users_;
  /// Per-community day quota, striped independently of users_ (nested
  /// acquisition in Add is always user → tenant across these two
  /// distinct structures — no cycle). Cleared wherever users_ is.
  UserStateShards tenants_;
  DedupIndex dedup_;
  std::atomic<std::shared_ptr<SignatureLog>> log_;
  std::mutex ingest_mu_;
  mutable ReadCache cache_;
  const bool cache_enabled_;
  std::atomic<std::uint64_t> epoch_;
  /// Log-identity generation (seqlock word): even when stable, odd
  /// mid-swap; the *user-visible* generation is the even value.
  std::atomic<std::uint64_t> gen_{0};
};

}  // namespace

std::unique_ptr<SignatureStore> SignatureStore::Create(
    const StoreOptions& options) {
  if (options.backend == Backend::kMonolithic) {
    return std::make_unique<MonolithicStore>(options);
  }
  return std::make_unique<ShardedStore>(options);
}

}  // namespace communix::store
