#include "communix/store/signature_store.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "communix/store/dedup_index.hpp"
#include "communix/store/signature_log.hpp"
#include "util/serde.hpp"

namespace communix::store {

std::uint64_t GenerateEpoch() {
  // Random high bits (distinct across processes/restarts) + a process
  // counter (distinct within a process even if the RNG repeats).
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t process_salt = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  const std::uint64_t e =
      process_salt ^ (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  return e == 0 ? 1 : e;
}

TopFrameKeys TopFrameSet(const dimmunix::Signature& sig) {
  TopFrameKeys tops;
  for (const auto& e : sig.entries()) {
    if (!e.outer.empty()) tops.insert(e.outer.TopKey());
    if (!e.inner.empty()) tops.insert(e.inner.TopKey());
  }
  return tops;
}

bool Adjacent(const TopFrameKeys& a, const TopFrameKeys& b) {
  if (a == b) return false;
  for (std::uint64_t k : a) {
    if (b.count(k) > 0) return true;
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Shared §III-C decision procedure.
//
// Both backends run exactly this sequence against the caller's locked
// view of the sender's UserState; only the locking around it differs.
// Order matters and matches the seed server: the daily quota counts
// *processed* signatures (so adjacency/duplicate rejections still consume
// quota), adjacency is checked before dedup, and the commit records the
// top-frame set only for accepted signatures.
// ---------------------------------------------------------------------------
template <typename TryInsertDedup, typename Commit>
AddOutcome RunAddPipeline(UserState& state, std::int64_t day,
                          const TopFrameKeys& tops, const Limits& limits,
                          TryInsertDedup&& try_insert_dedup, Commit&& commit) {
  if (state.day != day) {
    state.day = day;
    state.processed_today = 0;
  }
  if (state.processed_today >= limits.per_user_daily_limit) {
    return AddOutcome::kRateLimited;
  }
  ++state.processed_today;

  if (limits.adjacency_check_enabled) {
    for (const auto& prior : state.accepted_top_sets) {
      if (Adjacent(prior, tops)) return AddOutcome::kAdjacent;
    }
  }
  if (!try_insert_dedup()) return AddOutcome::kDuplicate;
  commit();
  state.accepted_top_sets.push_back(tops);
  return AddOutcome::kAccepted;
}

// ---------------------------------------------------------------------------
// Persistence. v1 is the seed server's exact format; v2 appends the log
// epoch (u64) to the header so a follower's lineage survives restarts.
// Both versions load; saves write v2.
// ---------------------------------------------------------------------------
constexpr std::uint32_t kDbMagic = 0x434D5342;  // "CMSB"
constexpr std::uint32_t kDbVersionV1 = 1;
constexpr std::uint32_t kDbVersion = 2;

struct LoadedRecord {
  StoredSignature entry;
  TopFrameKeys tops;
};

Status WriteDbFile(const std::string& path, const BinaryWriter& w) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Error(ErrorCode::kUnavailable, "cannot open " + tmp);
    }
    out.write(reinterpret_cast<const char*>(w.data().data()),
              static_cast<std::streamsize>(w.size()));
    if (!out) {
      return Status::Error(ErrorCode::kUnavailable, "short write " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Error(ErrorCode::kUnavailable, "rename: " + ec.message());
  }
  return Status::Ok();
}

void WriteRecord(BinaryWriter& w, const StoredSignature& s) {
  w.WriteU64(s.sender);
  w.WriteI64(s.added_at);
  w.WriteBytes(std::span<const std::uint8_t>(s.bytes.data(), s.bytes.size()));
}

/// On success `epoch_out` is the file's epoch; 0 for a v1 file (no
/// lineage recorded — the caller adopts a fresh one).
Status ParseDbFile(const std::string& path, std::vector<LoadedRecord>& out,
                   std::uint64_t* epoch_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Error(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  BinaryReader r(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  const std::uint32_t magic = r.ReadU32();
  const std::uint32_t version = r.ReadU32();
  if (magic != kDbMagic ||
      (version != kDbVersionV1 && version != kDbVersion)) {
    return Status::Error(ErrorCode::kDataLoss, "bad server DB header");
  }
  *epoch_out = version >= kDbVersion ? r.ReadU64() : 0;
  const std::uint32_t count = r.ReadU32();
  if (!r.ok()) {
    return Status::Error(ErrorCode::kDataLoss, "truncated server DB header");
  }
  out.clear();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    LoadedRecord rec;
    rec.entry.sender = r.ReadU64();
    rec.entry.added_at = r.ReadI64();
    rec.entry.bytes = r.ReadBytes();
    if (!r.ok()) {
      return Status::Error(ErrorCode::kDataLoss, "corrupt server DB record");
    }
    auto sig = dimmunix::Signature::FromBytes(std::span<const std::uint8_t>(
        rec.entry.bytes.data(), rec.entry.bytes.size()));
    if (!sig) {
      return Status::Error(ErrorCode::kDataLoss,
                           "stored signature fails to parse");
    }
    rec.entry.content_id = sig->ContentId();
    // Rebuild the adjacency state so the per-user restriction keeps
    // holding across restarts. The daily quota intentionally resets.
    rec.tops = TopFrameSet(*sig);
    out.push_back(std::move(rec));
  }
  return Status::Ok();
}

/// Validates a replicated entry's signature bytes, filling in
/// entry.content_id and producing the adjacency top-set. nullopt if the
/// bytes fail to parse (lineage corruption — the primary only ships
/// entries it accepted, so these bytes must round-trip).
std::optional<TopFrameKeys> DecodeReplicatedEntry(StoredSignature& entry) {
  auto sig = dimmunix::Signature::FromBytes(
      std::span<const std::uint8_t>(entry.bytes.data(), entry.bytes.size()));
  if (!sig) return std::nullopt;
  entry.content_id = sig->ContentId();
  return TopFrameSet(*sig);
}

// ---------------------------------------------------------------------------
// Monolithic backend: the seed server's storage, verbatim layout. One
// shared_mutex guards everything; kept as the Figure-2 baseline and as
// the reference implementation for the equivalence property test.
// ---------------------------------------------------------------------------
class MonolithicStore final : public SignatureStore {
 public:
  explicit MonolithicStore(const StoreOptions& options)
      : epoch_(options.epoch != 0 ? options.epoch : GenerateEpoch()) {}

  AddOutcome Add(UserId sender, std::int64_t day, const TopFrameKeys& tops,
                 std::uint64_t content_id, const dimmunix::Signature& sig,
                 TimePoint added_at, const Limits& limits) override {
    std::unique_lock lock(mu_);
    return RunAddPipeline(
        users_[sender], day, tops, limits,
        [&] { return content_ids_.insert(content_id).second; },
        [&] {
          StoredSignature stored;
          stored.bytes = sig.ToBytes();
          stored.content_id = content_id;
          stored.sender = sender;
          stored.added_at = added_at;
          db_.push_back(std::move(stored));
        });
  }

  void VisitRange(std::uint64_t from, std::uint64_t upto,
                  const std::function<void(
                      std::uint64_t, const std::vector<std::uint8_t>&)>& fn)
      const override {
    std::shared_lock lock(mu_);
    const std::uint64_t n = std::min<std::uint64_t>(upto, db_.size());
    for (std::uint64_t i = from; i < n; ++i) {
      fn(i, db_[i].bytes);
    }
  }

  std::uint64_t size() const override {
    std::shared_lock lock(mu_);
    return db_.size();
  }

  void VisitEntries(std::uint64_t from, std::uint64_t upto,
                    const std::function<void(
                        std::uint64_t, const StoredSignature&)>& fn)
      const override {
    std::shared_lock lock(mu_);
    const std::uint64_t n = std::min<std::uint64_t>(upto, db_.size());
    for (std::uint64_t i = from; i < n; ++i) {
      fn(i, db_[i]);
    }
  }

  std::uint64_t epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }

  Status ApplyReplicated(std::uint64_t index, StoredSignature entry) override {
    auto tops = DecodeReplicatedEntry(entry);
    if (!tops) {
      return Status::Error(ErrorCode::kDataLoss,
                           "replicated signature fails to parse");
    }
    std::unique_lock lock(mu_);
    if (index != db_.size()) {
      return Status::Error(ErrorCode::kFailedPrecondition,
                           "replication index gap");
    }
    if (!content_ids_.insert(entry.content_id).second) {
      return Status::Error(ErrorCode::kDataLoss,
                           "replicated entry duplicates the dedup set");
    }
    users_[entry.sender].accepted_top_sets.push_back(std::move(*tops));
    db_.push_back(std::move(entry));
    return Status::Ok();
  }

  void ResetForReplication(std::uint64_t new_epoch) override {
    std::unique_lock lock(mu_);
    db_.clear();
    content_ids_.clear();
    users_.clear();
    epoch_.store(new_epoch, std::memory_order_release);
  }

  Status SaveToFile(const std::string& path) const override {
    BinaryWriter w;
    {
      std::shared_lock lock(mu_);
      w.WriteU32(kDbMagic);
      w.WriteU32(kDbVersion);
      w.WriteU64(epoch_.load(std::memory_order_relaxed));
      w.WriteU32(static_cast<std::uint32_t>(db_.size()));
      for (const StoredSignature& s : db_) WriteRecord(w, s);
    }
    return WriteDbFile(path, w);
  }

  Status LoadFromFile(const std::string& path) override {
    std::vector<LoadedRecord> records;
    std::uint64_t file_epoch = 0;
    if (auto s = ParseDbFile(path, records, &file_epoch); !s.ok()) return s;
    std::unique_lock lock(mu_);
    db_.clear();
    content_ids_.clear();
    users_.clear();
    for (auto& rec : records) {
      content_ids_.insert(rec.entry.content_id);
      users_[rec.entry.sender].accepted_top_sets.push_back(
          std::move(rec.tops));
      db_.push_back(std::move(rec.entry));
    }
    epoch_.store(file_epoch != 0 ? file_epoch : GenerateEpoch(),
                 std::memory_order_release);
    return Status::Ok();
  }

 private:
  mutable std::shared_mutex mu_;
  std::vector<StoredSignature> db_;
  std::unordered_set<std::uint64_t> content_ids_;
  std::unordered_map<UserId, UserState> users_;
  std::atomic<std::uint64_t> epoch_;
};

// ---------------------------------------------------------------------------
// Sharded backend. Lock order: user shard -> dedup shard -> append mutex
// (strictly nested inside the pipeline, never the other way), so there is
// no cycle. A duplicate can be reported an instant before the winning
// append is published to readers — the decisions are still identical to
// some serialized order, which is all the monolithic lock guaranteed.
// ---------------------------------------------------------------------------
// The log is published through an atomic shared_ptr (the same RCU
// pattern as the dimmunix avoidance index): readers snapshot the
// pointer and walk that log lock-free, so replacing the whole database
// (ResetForReplication on a live follower, LoadFromFile) installs a
// fresh log object and simply lets in-flight readers finish against the
// retired one — no reader ever observes a log being torn down or its
// indexes being reused.
class ShardedStore final : public SignatureStore {
 public:
  explicit ShardedStore(const StoreOptions& options)
      : users_(options.user_shards),
        dedup_(options.dedup_shards),
        log_(std::make_shared<SignatureLog>()),
        epoch_(options.epoch != 0 ? options.epoch : GenerateEpoch()) {}

  AddOutcome Add(UserId sender, std::int64_t day, const TopFrameKeys& tops,
                 std::uint64_t content_id, const dimmunix::Signature& sig,
                 TimePoint added_at, const Limits& limits) override {
    const std::shared_ptr<SignatureLog> log = Log();
    return users_.With(sender, [&](UserState& state) {
      return RunAddPipeline(
          state, day, tops, limits,
          [&] { return dedup_.TryInsert(content_id); },
          [&] {
            StoredSignature stored;
            stored.bytes = sig.ToBytes();
            stored.content_id = content_id;
            stored.sender = sender;
            stored.added_at = added_at;
            log->Append(std::move(stored));
          });
    });
  }

  void VisitRange(std::uint64_t from, std::uint64_t upto,
                  const std::function<void(
                      std::uint64_t, const std::vector<std::uint8_t>&)>& fn)
      const override {
    Log()->Visit(from, upto, [&](std::uint64_t i, const StoredSignature& s) {
      fn(i, s.bytes);
    });
  }

  std::uint64_t size() const override { return Log()->size(); }

  void VisitEntries(std::uint64_t from, std::uint64_t upto,
                    const std::function<void(
                        std::uint64_t, const StoredSignature&)>& fn)
      const override {
    Log()->Visit(from, upto, fn);
  }

  std::uint64_t epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }

  Status ApplyReplicated(std::uint64_t index, StoredSignature entry) override {
    auto tops = DecodeReplicatedEntry(entry);
    if (!tops) {
      return Status::Error(ErrorCode::kDataLoss,
                           "replicated signature fails to parse");
    }
    // Ingest is ordered (one entry at exactly size()), so serialize it
    // (also against ResetForReplication); lock-free GET scans stay
    // concurrent with the log append inside.
    std::lock_guard ingest(ingest_mu_);
    const std::shared_ptr<SignatureLog> log = Log();
    if (index != log->size()) {
      return Status::Error(ErrorCode::kFailedPrecondition,
                           "replication index gap");
    }
    if (!dedup_.TryInsert(entry.content_id)) {
      return Status::Error(ErrorCode::kDataLoss,
                           "replicated entry duplicates the dedup set");
    }
    users_.With(entry.sender, [&](UserState& state) {
      state.accepted_top_sets.push_back(std::move(*tops));
    });
    log->Append(std::move(entry));
    return Status::Ok();
  }

  void ResetForReplication(std::uint64_t new_epoch) override {
    std::lock_guard ingest(ingest_mu_);
    users_.Clear();
    dedup_.Clear();
    // Fresh log object: concurrent GET scans keep reading the retired
    // one (kept alive by their shared_ptr snapshots) to completion.
    log_.store(std::make_shared<SignatureLog>(), std::memory_order_release);
    epoch_.store(new_epoch, std::memory_order_release);
  }

  Status SaveToFile(const std::string& path) const override {
    BinaryWriter w;
    // The snapshot log's committed prefix is immutable, so no lock is
    // needed: entries appended after this size() load are simply not
    // part of the save.
    const std::shared_ptr<SignatureLog> log = Log();
    const std::uint64_t n = log->size();
    w.WriteU32(kDbMagic);
    w.WriteU32(kDbVersion);
    w.WriteU64(epoch_.load(std::memory_order_relaxed));
    w.WriteU32(static_cast<std::uint32_t>(n));
    log->Visit(0, n, [&](std::uint64_t, const StoredSignature& s) {
      WriteRecord(w, s);
    });
    return WriteDbFile(path, w);
  }

  Status LoadFromFile(const std::string& path) override {
    std::vector<LoadedRecord> records;
    std::uint64_t file_epoch = 0;
    if (auto s = ParseDbFile(path, records, &file_epoch); !s.ok()) return s;
    std::lock_guard ingest(ingest_mu_);
    users_.Clear();
    dedup_.Clear();
    std::vector<StoredSignature> entries;
    entries.reserve(records.size());
    for (auto& rec : records) {
      dedup_.TryInsert(rec.entry.content_id);
      users_.With(rec.entry.sender, [&](UserState& state) {
        state.accepted_top_sets.push_back(std::move(rec.tops));
      });
      entries.push_back(std::move(rec.entry));
    }
    // Populate a private log, then publish it whole.
    auto loaded = std::make_shared<SignatureLog>();
    loaded->Reset(std::move(entries));
    log_.store(std::move(loaded), std::memory_order_release);
    epoch_.store(file_epoch != 0 ? file_epoch : GenerateEpoch(),
                 std::memory_order_release);
    return Status::Ok();
  }

 private:
  std::shared_ptr<SignatureLog> Log() const {
    return log_.load(std::memory_order_acquire);
  }

  UserStateShards users_;
  DedupIndex dedup_;
  std::atomic<std::shared_ptr<SignatureLog>> log_;
  std::mutex ingest_mu_;
  std::atomic<std::uint64_t> epoch_;
};

}  // namespace

std::unique_ptr<SignatureStore> SignatureStore::Create(
    const StoreOptions& options) {
  if (options.backend == Backend::kMonolithic) {
    return std::make_unique<MonolithicStore>(options);
  }
  return std::make_unique<ShardedStore>(options);
}

}  // namespace communix::store
