#include "net/inproc.hpp"

#include <span>
#include <utility>

namespace communix::net {

namespace {

// Round-trips a handler reply through its wire encoding, exactly as the
// TCP path does. This flattens zero-copy segments into the owned payload
// (the segment/header split is a sender-side representation, not a wire
// construct), so inproc callers parse the same bytes a TcpClient would.
Result<Response> RoundTripResponse(const Response& resp) {
  const auto bytes = resp.Serialize();
  auto parsed = Response::Deserialize(
      std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  if (!parsed) {
    return Status::Error(ErrorCode::kDataLoss, "response failed to round-trip");
  }
  return *std::move(parsed);
}

}  // namespace

Result<Response> InprocTransport::Call(const Request& request) {
  // Round-trip through serialization so the in-process path exercises the
  // same (de)coding as the TCP path.
  const auto bytes = request.Serialize();
  auto parsed = Request::Deserialize(
      std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  if (!parsed) {
    return Status::Error(ErrorCode::kDataLoss, "request failed to round-trip");
  }
  return RoundTripResponse(handler_.Handle(*parsed));
}

Result<Response> PipelinedInprocTransport::Call(const Request& request) {
  if (const Status sent = Send(request); !sent.ok()) return sent;
  return Receive();
}

Status PipelinedInprocTransport::Send(const Request& request) {
  if (event_log_ != nullptr) event_log_->push_back("send " + tag_);
  inflight_.push_back(request.Serialize());
  return Status::Ok();
}

Result<Response> PipelinedInprocTransport::Receive() {
  if (inflight_.empty()) {
    return Status::Error(ErrorCode::kFailedPrecondition,
                         "Receive with no outstanding Send");
  }
  if (event_log_ != nullptr) event_log_->push_back("recv " + tag_);
  const std::vector<std::uint8_t> bytes = std::move(inflight_.front());
  inflight_.pop_front();
  // The handler runs at Receive time: frames buffered by a pipelined
  // round are applied when the caller collects replies, which keeps the
  // reply-in-request-order contract trivially true in process.
  auto parsed = Request::Deserialize(
      std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  if (!parsed) {
    return Status::Error(ErrorCode::kDataLoss, "request failed to round-trip");
  }
  return RoundTripResponse(handler_.Handle(*parsed));
}

}  // namespace communix::net
