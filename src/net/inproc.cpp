#include "net/inproc.hpp"

namespace communix::net {

Result<Response> InprocTransport::Call(const Request& request) {
  // Round-trip through serialization so the in-process path exercises the
  // same (de)coding as the TCP path.
  const auto bytes = request.Serialize();
  auto parsed = Request::Deserialize(
      std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  if (!parsed) {
    return Status::Error(ErrorCode::kDataLoss, "request failed to round-trip");
  }
  return handler_.Handle(*parsed);
}

}  // namespace communix::net
