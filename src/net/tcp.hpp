// TCP transport (POSIX sockets) for the end-to-end distribution path.
//
// Figure 3 measures the whole signature-distribution pipeline over a real
// network stack: N client threads issuing "ADD(sig),GET(0)" sequences
// against the server. This is a minimal length-prefixed RPC over TCP with
// persistent connections.
//
// The server multiplexes all connections over a poll(2) dispatcher plus a
// bounded ThreadPool instead of one dedicated thread per connection:
// a connection with a readable socket is handed to a pool worker, which
// parses every fully buffered request frame (pipelining: a client may
// send many frames before reading any reply; replies come back in order),
// queues the replies, and re-arms the connection with the dispatcher.
// 10k mostly idle connections therefore cost 10k fds, not 10k threads.
//
// Replies never block a worker: each connection carries a non-blocking
// outbound queue of owned-or-shared byte chunks (zero-copy Response
// segments are queued by reference), flushed with one gather sendmsg per
// readable burst. A partial write re-arms the connection for POLLOUT in
// the dispatcher instead of spinning the worker; while the queue is
// non-empty the server reads nothing more from that connection, so TCP
// flow control pushes back on pipelining senders. A connection whose
// queue exceeds `max_outbound_bytes` and fails to drain back under the
// cap within `stall_deadline_ms` is a pathological slow reader and gets
// disconnected — the socket-level analogue of the deadlock-avoidance
// yield: one bad participant must not pin resources everyone shares.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace communix::net {

/// Serves a RequestHandler on a TCP port.
class TcpServer {
 public:
  struct Options {
    /// 0 picks an ephemeral port (see port()).
    std::uint16_t port = 0;
    /// Pool workers handling request frames; 0 = max(4, hw concurrency).
    std::size_t worker_threads = 0;
    /// Per-connection outbound queue cap. Crossing it marks the
    /// connection stalled (backpressure_stalls) and stops request intake
    /// on it until the queue drains back under the cap.
    std::size_t max_outbound_bytes = 32u * 1024u * 1024u;
    /// How long a connection may stay over the queue cap before it is
    /// disconnected as a pathological slow reader.
    int stall_deadline_ms = 15'000;
    /// Registry receiving the transport's counters (net.*). Share one
    /// with the server handler so a single kStats snapshot covers both
    /// tiers; null gives the transport a private registry.
    std::shared_ptr<obs::MetricsRegistry> metrics;
  };

  /// Structural counters for the non-blocking reply path (monotonic since
  /// Start; peak_outbound_queue_bytes is a high-water mark).
  struct Stats {
    std::uint64_t writev_flushes = 0;         ///< gather sendmsg syscalls
    std::uint64_t backpressure_stalls = 0;    ///< queue crossed the cap
    std::uint64_t slow_client_disconnects = 0;
    std::uint64_t peak_outbound_queue_bytes = 0;
    std::uint64_t wake_pipe_full_wakes = 0;   ///< Wake() hit a full pipe
  };

  TcpServer(RequestHandler& handler, std::uint16_t port = 0);
  TcpServer(RequestHandler& handler, const Options& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and starts the dispatcher + worker pool.
  Status Start();
  /// Stops accepting, closes all connections, joins dispatcher + workers.
  void Stop();

  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }
  std::size_t worker_threads() const;
  Stats GetStats() const;
  /// The registry the transport reports into (never null).
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

 private:
  struct Conn;

  void PollLoop();
  /// Pool task: parse buffered request frames on `fd`, queue replies,
  /// flush once, then re-arm the connection with the dispatcher.
  void ServeReadable(int fd);
  /// Parses every complete frame in c.inbuf (stops at the queue cap) and
  /// queues the replies. False = framing violation, drop the connection.
  bool ParseFrames(Conn& c);
  /// Queues one reply (frame header + owned prefix as one owned chunk,
  /// zero-copy segments by reference) and updates cap/stall state.
  void EnqueueResponse(Conn& c, const Response& response);
  /// Gather-flushes c.outq until empty or EAGAIN. False = fatal socket
  /// error (drop the connection); EAGAIN is success with residue.
  bool FlushConn(Conn& c);
  /// Closes + forgets `fd` exactly once (registry-guarded).
  void CloseConn(int fd);
  /// Pokes the dispatcher out of poll().
  void Wake();

  RequestHandler& handler_;
  Options options_;
  std::uint16_t port_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::thread poll_thread_;
  std::unique_ptr<ThreadPool> pool_;

  /// Registry-owned counters (pointers stable for the registry's life;
  /// the registry outlives the server via metrics_).
  struct Counters {
    obs::Counter* writev_flushes = nullptr;
    obs::Counter* backpressure_stalls = nullptr;
    obs::Counter* slow_client_disconnects = nullptr;
    obs::Gauge* peak_outbound_queue_bytes = nullptr;  // high-water mark
    obs::Counter* wake_pipe_full_wakes = nullptr;
  };
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  Counters stats_;

  std::mutex mu_;
  /// Every live connection, keyed by fd. A connection is owned EITHER by
  /// the poll loop (armed) OR by exactly one worker (being served); the
  /// handoff through pending_rearm_/pending_close_ under mu_ orders all
  /// access to its buffers, so Conn itself needs no lock. Stop() destroys
  /// entries only after the pool has drained.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  /// Served connections waiting to rejoin the poll set / to be closed.
  std::vector<int> pending_rearm_;
  std::vector<int> pending_close_;
};

/// Blocking TCP client. Call() is the one-outstanding-request path;
/// Send()/Receive() split the round trip so callers can pipeline several
/// requests on one connection (replies arrive in request order) — and,
/// via PipelinedClientTransport, across connections: the LogShipper
/// fans one shipping round out to every follower before collecting any
/// reply.
class TcpClient final : public PipelinedClientTransport {
 public:
  TcpClient() = default;
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  Status Connect(const std::string& host, std::uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  Status Send(const Request& request) override;
  Result<Response> Receive() override;
  Result<Response> Call(const Request& request) override;

 private:
  int fd_ = -1;
};

/// A self-healing PipelinedClientTransport over one TcpClient: every
/// Send/Call (re)establishes the connection if it is down, and any
/// transport error tears it down so the NEXT round reconnects from a
/// clean slate (an errored pipelined connection has unknowable framing
/// state — resuming on it would desynchronize request/reply pairing).
/// This is what lets the LogShipper's pipelined ShipRound run over real
/// processes: a follower restart costs one failed round, then the
/// shipper reconnects and resumes from the follower's persisted length.
class ReconnectingTcpClient final : public PipelinedClientTransport {
 public:
  ReconnectingTcpClient(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}

  Status Send(const Request& request) override;
  Result<Response> Receive() override;
  Result<Response> Call(const Request& request) override;

  bool connected() const { return client_.connected(); }
  /// Successful connection establishments (first connect counts).
  std::uint64_t connects() const { return connects_; }

 private:
  Status EnsureConnected();
  void Drop();

  std::string host_;
  std::uint16_t port_;
  TcpClient client_;
  std::uint64_t connects_ = 0;
};

/// Frame helpers shared by both ends (u32 LE length + body). Exposed for
/// tests that exercise partial reads and oversized frames.
Status WriteFrame(int fd, std::span<const std::uint8_t> body);
Result<std::vector<std::uint8_t>> ReadFrame(int fd, std::size_t max_size);

/// Upper bound on accepted frame size (defensive; a signature is ~1.7 KB,
/// but GET(0) replies carry whole databases).
constexpr std::size_t kMaxFrameSize = 256u * 1024u * 1024u;

}  // namespace communix::net
