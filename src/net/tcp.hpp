// TCP transport (POSIX sockets) for the end-to-end distribution path.
//
// Figure 3 measures the whole signature-distribution pipeline over a real
// network stack: N client threads issuing "ADD(sig),GET(0)" sequences
// against the server. This is a minimal length-prefixed RPC over TCP with
// persistent connections.
//
// The server multiplexes all connections over a poll(2) dispatcher plus a
// bounded ThreadPool instead of one dedicated thread per connection:
// a connection with a readable socket is handed to a pool worker, which
// drains every fully buffered request frame (pipelining: a client may
// send many frames before reading any reply; replies come back in order),
// then re-arms the connection with the dispatcher. 10k mostly idle
// connections therefore cost 10k fds, not 10k threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/message.hpp"
#include "util/thread_pool.hpp"

namespace communix::net {

/// Serves a RequestHandler on a TCP port.
class TcpServer {
 public:
  struct Options {
    /// 0 picks an ephemeral port (see port()).
    std::uint16_t port = 0;
    /// Pool workers handling request frames; 0 = max(4, hw concurrency).
    std::size_t worker_threads = 0;
  };

  TcpServer(RequestHandler& handler, std::uint16_t port = 0);
  TcpServer(RequestHandler& handler, const Options& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and starts the dispatcher + worker pool.
  Status Start();
  /// Stops accepting, closes all connections, joins dispatcher + workers.
  void Stop();

  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }
  std::size_t worker_threads() const;

 private:
  void PollLoop();
  /// Pool task: drain buffered request frames on `fd`, then re-arm it.
  void ServeReadable(int fd);
  /// Closes `fd` exactly once (registry-guarded against double close).
  void CloseConn(int fd);
  /// Pokes the dispatcher out of poll().
  void Wake();

  RequestHandler& handler_;
  Options options_;
  std::uint16_t port_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::thread poll_thread_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex mu_;
  /// Every live connection fd (armed or being served); Stop() shuts these
  /// down to unblock workers mid-read.
  std::unordered_set<int> conn_fds_;
  /// Served connections waiting to rejoin the poll set / to be closed.
  std::vector<int> pending_rearm_;
  std::vector<int> pending_close_;
};

/// Blocking TCP client. Call() is the one-outstanding-request path;
/// Send()/Receive() split the round trip so callers can pipeline several
/// requests on one connection (replies arrive in request order) — and,
/// via PipelinedClientTransport, across connections: the LogShipper
/// fans one shipping round out to every follower before collecting any
/// reply.
class TcpClient final : public PipelinedClientTransport {
 public:
  TcpClient() = default;
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  Status Connect(const std::string& host, std::uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  Status Send(const Request& request) override;
  Result<Response> Receive() override;
  Result<Response> Call(const Request& request) override;

 private:
  int fd_ = -1;
};

/// Frame helpers shared by both ends (u32 LE length + body). Exposed for
/// tests that exercise partial reads and oversized frames.
Status WriteFrame(int fd, std::span<const std::uint8_t> body);
Result<std::vector<std::uint8_t>> ReadFrame(int fd, std::size_t max_size);

/// Upper bound on accepted frame size (defensive; a signature is ~1.7 KB,
/// but GET(0) replies carry whole databases).
constexpr std::size_t kMaxFrameSize = 256u * 1024u * 1024u;

}  // namespace communix::net
