// TCP transport (POSIX sockets) for the end-to-end distribution path.
//
// Figure 3 measures the whole signature-distribution pipeline over a real
// network stack: N client threads issuing "ADD(sig),GET(0)" sequences
// against the server. This is a minimal length-prefixed RPC over TCP:
// persistent connections, one in-flight request per connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/message.hpp"

namespace communix::net {

/// Serves a RequestHandler on a TCP port. Each accepted connection gets a
/// dedicated thread that loops: read frame -> handle -> write frame.
class TcpServer {
 public:
  /// `port` 0 picks an ephemeral port (see port()).
  TcpServer(RequestHandler& handler, std::uint16_t port = 0);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and starts the accept loop.
  Status Start();
  /// Stops accepting, closes all connections, joins threads.
  void Stop();

  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  RequestHandler& handler_;
  std::uint16_t port_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

/// Blocking TCP client; one outstanding request at a time.
class TcpClient final : public ClientTransport {
 public:
  TcpClient() = default;
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  Status Connect(const std::string& host, std::uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  Result<Response> Call(const Request& request) override;

 private:
  int fd_ = -1;
};

/// Frame helpers shared by both ends (u32 LE length + body). Exposed for
/// tests that exercise partial reads and oversized frames.
Status WriteFrame(int fd, std::span<const std::uint8_t> body);
Result<std::vector<std::uint8_t>> ReadFrame(int fd, std::size_t max_size);

/// Upper bound on accepted frame size (defensive; a signature is ~1.7 KB,
/// but GET(0) replies carry whole databases).
constexpr std::size_t kMaxFrameSize = 256u * 1024u * 1024u;

}  // namespace communix::net
