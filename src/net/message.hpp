// Wire protocol between Communix clients and the Communix server.
//
// The paper's server processes two request kinds (§IV-A): ADD(sig) and
// GET(k) ("send me the signatures from the database starting from index
// k"). We add ISSUE_ID, the out-of-band step that hands each user their
// AES-encrypted id (the paper assumes this service exists; §III-C2), and
// PING for health checks.
//
// Framing (both directions): u32 little-endian length, then the payload
// serialized with BinaryWriter. Requests: u8 type + fields. Responses:
// u8 status code + error string + payload bytes.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "util/serde.hpp"
#include "util/status.hpp"

namespace communix::net {

enum class MsgType : std::uint8_t {
  kPing = 0,
  kAddSignature = 1,   // token (16 bytes) + serialized signature
  kGetSignatures = 2,  // u64 from_index
  kIssueId = 3,        // u64 requested user id (test/deploy convenience)
  kAddBatch = 4,       // token (16 bytes) + u32 count + count length-prefixed
                       // serialized signatures; reply payload is u32 count +
                       // one status-code byte per signature, in order
  kReplPull = 5,       // replication feed read + anti-entropy handshake:
                       // requester's epoch, first missing index, entry limit
                       // (0 = probe only). Served by any role.
  kReplBatch = 6,      // committed-entry shipment into a follower: epoch,
                       // reset flag, start index, entries. Follower-only.
  kCheckpoint = 7,     // whole-store snapshot (DB format v3 blob) into a
                       // far-behind follower: token + blob. The follower
                       // validates the blob in full, installs it, and
                       // replays only the post-checkpoint log suffix via
                       // kReplBatch. Follower-only.
  kShardMap = 8,       // routing-tier map fetch: u64 known_version; the
                       // reply carries the server's current shard map only
                       // when it is newer (version-gated refresh). Served
                       // by any role. Frame helpers live in
                       // communix/cluster/shard_map.hpp — the map is a
                       // routing-tier type, not a transport one.
  kMarkSuperseded = 9, // batched supersede marks from the dimmunix
                       // false-positive / generalization flow: token (16
                       // bytes) + u32 count + count u64 content ids. The
                       // server marks every matching entry in ONE store
                       // pass; Compact() later drops them. Primary-only.
  kStats = 10,         // introspection: u8 flags (bit0 = metrics, bit1 =
                       // slow traces) + u32 max_traces; the reply is a
                       // versioned registry snapshot (counters, gauges,
                       // histograms) plus the most recent slow-request
                       // traces. Read-only and served by any role — this
                       // is what failure detectors, rebalancers and the
                       // communix_stats CLI scrape. Helpers:
                       // BuildStatsRequest / ParseStatsReply below.
};

/// Transport-side timestamps for request-stage tracing (obs/trace.hpp).
/// Never serialized — the TCP tier stamps them on the in-memory Request
/// it hands the handler, which derives the accept / queue-wait / parse
/// stages. `valid` stays false on transports that don't trace (inproc).
struct RequestTiming {
  bool valid = false;
  std::chrono::steady_clock::time_point readable_at{};   // poll saw data
  std::chrono::steady_clock::time_point worker_start{};  // worker picked up
  std::chrono::steady_clock::time_point parse_start{};
  std::chrono::steady_clock::time_point parse_done{};
};

struct Request {
  MsgType type = MsgType::kPing;
  std::vector<std::uint8_t> payload;
  /// Not part of the wire format (Serialize/Deserialize ignore it).
  RequestTiming timing;

  std::vector<std::uint8_t> Serialize() const;
  static std::optional<Request> Deserialize(
      std::span<const std::uint8_t> bytes);
};

struct Response {
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  /// Owned header/prefix bytes of the reply payload. For most verbs this
  /// IS the whole payload; handlers that reply with large cached data put
  /// only the small per-request prefix here.
  std::vector<std::uint8_t> payload;
  /// Zero-copy payload tail: shared, immutable byte runs appended (in
  /// order) after `payload` on the wire. The server GET path aliases the
  /// 2Q cache's materialized slice here, so a cache hit serializes ~16
  /// owned header bytes and shares the O(db) rest across every connection
  /// polling the same (generation, from_index). Segments never cross the
  /// wire structurally — the logical payload a peer deserializes is
  /// byte-identical to the flat `payload + segments` concatenation.
  std::vector<std::shared_ptr<const std::vector<std::uint8_t>>> segments;
  /// Stage-trace carrier, not part of the wire format: the handler
  /// attaches it, the TCP flush path calls CompleteFlush when the
  /// reply's last chunk drains, and the destructor publishes the record
  /// to the server's trace ring exactly once (see obs/trace.hpp).
  std::shared_ptr<obs::PendingTrace> trace;

  bool ok() const { return code == ErrorCode::kOk; }

  /// Total logical payload size: owned prefix + all shared segments.
  std::size_t payload_size() const;

  /// The logical payload as one owned vector (copies segments — for
  /// callers that parse a Response without going through a transport).
  std::vector<std::uint8_t> FlattenedPayload() const;

  /// Serialized reply WITHOUT the segment bytes: u8 code + error string +
  /// u32 total payload length + the owned `payload` prefix. A gather
  /// writer emits this header followed by each segment's bytes; the
  /// result is byte-identical to Serialize().
  std::vector<std::uint8_t> SerializeHeader() const;

  std::vector<std::uint8_t> Serialize() const;
  static std::optional<Response> Deserialize(
      std::span<const std::uint8_t> bytes);
};

/// Builds a kAddBatch request from a raw 16-byte sender token and the
/// serialized signatures to upload (client side of the batched pipeline;
/// the token stays a raw span so this layer needs no crypto types).
Request BuildAddBatchRequest(
    std::span<const std::uint8_t> token16,
    std::span<const std::vector<std::uint8_t>> serialized_sigs);

/// Parses a kAddBatch reply payload into the per-signature status codes,
/// in upload order. nullopt if the payload is malformed.
std::optional<std::vector<ErrorCode>> ParseAddBatchResponse(
    const Response& resp);

// ---- replication verbs (cluster tier) -------------------------------------
//
// Replication ships committed SignatureLog entries with their full store
// metadata (sender, added_at, serialized signature), so a follower's log
// — and therefore its GET(k) byte streams, assigned indexes and save
// files — is byte-identical to the primary's. The epoch identifies a log
// lineage: entries from different epochs must never be mixed, and the
// catch-up handshake (a kReplPull probe) detects a mismatch and restarts
// the follower from index 0 under the primary's epoch.

/// One committed log entry as replication ships it.
struct ReplEntry {
  std::uint64_t sender = 0;
  std::int64_t added_at = 0;
  std::vector<std::uint8_t> sig_bytes;

  friend bool operator==(const ReplEntry&, const ReplEntry&) = default;
};

/// kReplPull request: "I am at (epoch, from_index); ship me up to `limit`
/// entries". limit == 0 is the anti-entropy probe (epoch + length only —
/// nothing sensitive, so probes need no credential and any client may
/// send them). Entry-bearing pulls (limit > 0) return the full stored
/// metadata including each entry's sender id — which GET deliberately
/// omits — so they require the replication principal's 16-byte `token`,
/// exactly like kReplBatch.
struct ReplPullRequest {
  std::vector<std::uint8_t> token;  // 16 bytes (may be zeros for probes)
  std::uint64_t epoch = 0;
  std::uint64_t from_index = 0;
  std::uint32_t limit = 0;

  ReplPullRequest() : token(16, 0) {}
  ReplPullRequest(std::uint64_t e, std::uint64_t from, std::uint32_t lim)
      : token(16, 0), epoch(e), from_index(from), limit(lim) {}
};

/// kReplPull reply. When the requester's epoch does not match the serving
/// node's, `reset` is set and any shipped entries restart at index 0 —
/// the receiver must discard its log and adopt `epoch`.
struct ReplPullReply {
  std::uint64_t epoch = 0;
  std::uint64_t log_size = 0;
  bool reset = false;
  std::uint64_t start_index = 0;
  std::vector<ReplEntry> entries;
};

/// kReplBatch request: entries [from_index, from_index + entries.size())
/// of the `epoch` log. `reset` orders the receiver to clear its state and
/// adopt `epoch` before applying (the catch-up path). `token` is the raw
/// 16-byte credential of the replication peer (the primary mints it for
/// the reserved replication principal; the follower verifies it before
/// touching its store — ingest is destructive, unlike kReplPull which
/// only reads what GET already serves).
struct ReplBatchRequest {
  std::vector<std::uint8_t> token;  // 16 bytes
  std::uint64_t epoch = 0;
  bool reset = false;
  std::uint64_t from_index = 0;
  std::vector<ReplEntry> entries;
};

/// kReplBatch reply: the follower's post-apply epoch and committed
/// length. The shipper resumes its feed cursor from `log_size`, which
/// makes retransmissions after a lost reply idempotent.
struct ReplBatchReply {
  std::uint64_t epoch = 0;
  std::uint64_t log_size = 0;
};

Request BuildReplPullRequest(const ReplPullRequest& pull);
std::optional<ReplPullRequest> ParseReplPullRequest(const Request& req);

Response BuildReplPullReply(const ReplPullReply& reply);
std::optional<ReplPullReply> ParseReplPullReply(const Response& resp);

Request BuildReplBatchRequest(const ReplBatchRequest& batch);
std::optional<ReplBatchRequest> ParseReplBatchRequest(const Request& req);

Response BuildReplBatchReply(const ReplBatchReply& reply);
std::optional<ReplBatchReply> ParseReplBatchReply(const Response& resp);

/// kCheckpoint request: a serialized store checkpoint (the same framed,
/// checksummed v3 blob SaveToFile writes) under the primary's epoch.
/// `token` is the replication principal's credential, like kReplBatch —
/// installing a snapshot is as destructive as ingest gets. The wire
/// layer treats the blob as opaque bytes; the store layer
/// (ParseCheckpoint) owns validation, so corruption anywhere — transport
/// or disk — fails through one code path. The reply is a ReplBatchReply
/// (post-install epoch + committed length): the shipper resumes its
/// entry feed from `log_size`, which is what makes bootstrap cost
/// "snapshot + suffix" instead of "replay everything".
struct CheckpointTransfer {
  std::vector<std::uint8_t> token;  // 16 bytes
  std::vector<std::uint8_t> blob;   // DB format v3 (checkpoint.hpp)
};

Request BuildCheckpointRequest(const CheckpointTransfer& ckpt);
std::optional<CheckpointTransfer> ParseCheckpointRequest(const Request& req);

/// kMarkSuperseded request: the sender's 16-byte token plus the content
/// ids of signatures its runtime retired (generalization merges replace
/// the old content id; the FP detector disables flagged ones). One frame
/// per plugin sync batches every retirement since the last sync, and the
/// server marks all matching entries in a single store pass — feeding
/// compaction without a per-signature round trip. The reply payload is a
/// u32: how many entries were newly marked.
struct MarkSupersededRequest {
  std::vector<std::uint8_t> token;  // 16 bytes
  std::vector<std::uint64_t> content_ids;

  MarkSupersededRequest() : token(16, 0) {}
};

Request BuildMarkSupersededRequest(const MarkSupersededRequest& mark);
std::optional<MarkSupersededRequest> ParseMarkSupersededRequest(
    const Request& req);

Response BuildMarkSupersededReply(std::uint32_t marked);
std::optional<std::uint32_t> ParseMarkSupersededReply(const Response& resp);

// ---- introspection verb (observability tier) ------------------------------

/// kStats request: which parts of the snapshot to serve. Bounded like
/// every other verb — max_traces is clamped server-side by the ring
/// capacity, so a hostile value can't size an allocation.
struct StatsRequest {
  bool include_metrics = true;
  bool include_traces = false;
  std::uint32_t max_traces = 0;

  friend bool operator==(const StatsRequest&, const StatsRequest&) = default;
};

Request BuildStatsRequest(const StatsRequest& stats);
std::optional<StatsRequest> ParseStatsRequest(const Request& req);

/// kStats reply payload: u32 snapshot version + u64 captured_unix_ns +
/// counters (u32 count, {string, u64}) + gauges (same) + histograms
/// (u32 count, {string, u64 count, u64 sum_ns, u32 nonzero buckets,
/// {u8 index, u64 count}}) + traces (u32 count, {u8 verb, u8 status,
/// u64 start_unix_ns, u64 total_ns, 6 x u64 stage_ns}). Every count is
/// validated against the remaining bytes before any reserve.
Response BuildStatsReply(const obs::MetricsSnapshot& snap);
std::optional<obs::MetricsSnapshot> ParseStatsReply(const Response& resp);

/// Server-side request processor (implemented by communix::CommunixServer).
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  virtual Response Handle(const Request& request) = 0;
};

/// Client-side synchronous transport.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;
  virtual Result<Response> Call(const Request& request) = 0;
};

/// A transport whose request/response halves can be driven separately,
/// so one thread can pipeline across several connections: send a request
/// on every connection first, then collect the replies (Call ≡ Send +
/// Receive on each). Replies on ONE transport arrive in request order;
/// interleaving Sends without matching Receives on the same transport is
/// the caller's bug. The LogShipper uses this to ship one round to all
/// followers concurrently — catch-up becomes O(lag) instead of
/// O(lag × followers) in round-trip terms.
class PipelinedClientTransport : public ClientTransport {
 public:
  virtual Status Send(const Request& request) = 0;
  virtual Result<Response> Receive() = 0;
};

}  // namespace communix::net
