// Wire protocol between Communix clients and the Communix server.
//
// The paper's server processes two request kinds (§IV-A): ADD(sig) and
// GET(k) ("send me the signatures from the database starting from index
// k"). We add ISSUE_ID, the out-of-band step that hands each user their
// AES-encrypted id (the paper assumes this service exists; §III-C2), and
// PING for health checks.
//
// Framing (both directions): u32 little-endian length, then the payload
// serialized with BinaryWriter. Requests: u8 type + fields. Responses:
// u8 status code + error string + payload bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/serde.hpp"
#include "util/status.hpp"

namespace communix::net {

enum class MsgType : std::uint8_t {
  kPing = 0,
  kAddSignature = 1,   // token (16 bytes) + serialized signature
  kGetSignatures = 2,  // u64 from_index
  kIssueId = 3,        // u64 requested user id (test/deploy convenience)
  kAddBatch = 4,       // token (16 bytes) + u32 count + count length-prefixed
                       // serialized signatures; reply payload is u32 count +
                       // one status-code byte per signature, in order
};

struct Request {
  MsgType type = MsgType::kPing;
  std::vector<std::uint8_t> payload;

  std::vector<std::uint8_t> Serialize() const;
  static std::optional<Request> Deserialize(
      std::span<const std::uint8_t> bytes);
};

struct Response {
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  std::vector<std::uint8_t> payload;

  bool ok() const { return code == ErrorCode::kOk; }

  std::vector<std::uint8_t> Serialize() const;
  static std::optional<Response> Deserialize(
      std::span<const std::uint8_t> bytes);
};

/// Builds a kAddBatch request from a raw 16-byte sender token and the
/// serialized signatures to upload (client side of the batched pipeline;
/// the token stays a raw span so this layer needs no crypto types).
Request BuildAddBatchRequest(
    std::span<const std::uint8_t> token16,
    std::span<const std::vector<std::uint8_t>> serialized_sigs);

/// Parses a kAddBatch reply payload into the per-signature status codes,
/// in upload order. nullopt if the payload is malformed.
std::optional<std::vector<ErrorCode>> ParseAddBatchResponse(
    const Response& resp);

/// Server-side request processor (implemented by communix::CommunixServer).
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  virtual Response Handle(const Request& request) = 0;
};

/// Client-side synchronous transport.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;
  virtual Result<Response> Call(const Request& request) = 0;
};

}  // namespace communix::net
