#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>

#include "util/logging.hpp"

namespace communix::net {

namespace {

Status WriteAll(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Error(ErrorCode::kUnavailable,
                           std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status ReadAll(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Error(ErrorCode::kUnavailable,
                           std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::Error(ErrorCode::kUnavailable, "connection closed");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Gather-write width per sendmsg call. Linux caps msg_iovlen at IOV_MAX
/// (1024); 64 already amortizes the syscall across a large burst.
constexpr std::size_t kMaxIovPerFlush = 64;

/// recv() scratch size for the worker read loop.
constexpr std::size_t kReadChunk = 64u * 1024u;

}  // namespace

Status WriteFrame(int fd, std::span<const std::uint8_t> body) {
  std::uint8_t header[4];
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(len >> (i * 8));
  }
  if (auto s = WriteAll(fd, header, 4); !s.ok()) return s;
  return WriteAll(fd, body.data(), body.size());
}

Result<std::vector<std::uint8_t>> ReadFrame(int fd, std::size_t max_size) {
  std::uint8_t header[4];
  if (auto s = ReadAll(fd, header, 4); !s.ok()) return s;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[i]) << (i * 8);
  }
  if (len > max_size) {
    return Status::Error(ErrorCode::kDataLoss, "frame exceeds size limit");
  }
  std::vector<std::uint8_t> body(len);
  if (len > 0) {
    if (auto s = ReadAll(fd, body.data(), len); !s.ok()) return s;
  }
  return body;
}

/// One queued outbound byte run: either owned (frame header + reply
/// prefix) or a shared zero-copy Response segment queued by reference.
struct OutChunk {
  std::vector<std::uint8_t> owned;
  std::shared_ptr<const std::vector<std::uint8_t>> shared;
  std::size_t offset = 0;
  /// Set on a reply's LAST chunk: completing this chunk completes the
  /// reply's flush stage (obs/trace.hpp). Dropped (publishing the trace
  /// with whatever was stamped) if the connection dies mid-flush.
  std::shared_ptr<obs::PendingTrace> trace;

  const std::vector<std::uint8_t>& bytes() const {
    return shared != nullptr ? *shared : owned;
  }
};

struct TcpServer::Conn {
  int fd = -1;
  /// Received-but-unparsed bytes (partial frames reassemble here).
  std::vector<std::uint8_t> inbuf;
  /// Queued reply bytes awaiting flush.
  std::deque<OutChunk> outq;
  /// Total unsent bytes across outq.
  std::size_t out_bytes = 0;
  /// outq crossed Options::max_outbound_bytes and has not drained back
  /// under it; request intake is paused and the stall clock is running.
  bool over_cap = false;
  std::chrono::steady_clock::time_point stall_since{};
  /// Peer half-closed (EOF on read): flush remaining replies, then close.
  bool close_after_drain = false;
  /// Trace stamps for the current service pass: when the dispatcher saw
  /// the socket readable and when the worker picked it up. Written by
  /// the thread owning the connection (poll loop then worker — the
  /// pending_rearm_ handoff orders them, like every other Conn field).
  std::chrono::steady_clock::time_point readable_at{};
  std::chrono::steady_clock::time_point worker_start{};
};

TcpServer::TcpServer(RequestHandler& handler, std::uint16_t port)
    : TcpServer(handler, [port] {
        Options o;
        o.port = port;
        return o;
      }()) {}

TcpServer::TcpServer(RequestHandler& handler, const Options& options)
    : handler_(handler),
      options_(options),
      port_(options.port),
      metrics_(options.metrics ? options.metrics
                               : std::make_shared<obs::MetricsRegistry>()) {
  stats_.writev_flushes = metrics_->GetCounter("net.writev_flushes");
  stats_.backpressure_stalls = metrics_->GetCounter("net.backpressure_stalls");
  stats_.slow_client_disconnects =
      metrics_->GetCounter("net.slow_client_disconnects");
  stats_.peak_outbound_queue_bytes =
      metrics_->GetGauge("net.peak_outbound_queue_bytes");
  stats_.wake_pipe_full_wakes =
      metrics_->GetCounter("net.wake_pipe_full_wakes");
}

TcpServer::~TcpServer() { Stop(); }

std::size_t TcpServer::worker_threads() const {
  return pool_ ? pool_->size() : 0;
}

TcpServer::Stats TcpServer::GetStats() const {
  Stats s;
  s.writev_flushes = stats_.writev_flushes->Value();
  s.backpressure_stalls = stats_.backpressure_stalls->Value();
  s.slow_client_disconnects = stats_.slow_client_disconnects->Value();
  s.peak_outbound_queue_bytes = stats_.peak_outbound_queue_bytes->Value();
  s.wake_pipe_full_wakes = stats_.wake_pipe_full_wakes->Value();
  return s;
}

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Error(ErrorCode::kUnavailable,
                         std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s = Status::Error(
        ErrorCode::kUnavailable, std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 1024) < 0) {
    const Status s = Status::Error(
        ErrorCode::kUnavailable,
        std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (port_ == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::pipe(wake_pipe_) < 0) {
    const Status s = Status::Error(
        ErrorCode::kUnavailable, std::string("pipe: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  SetNonBlocking(listen_fd_);
  SetNonBlocking(wake_pipe_[0]);
  // The write end too: Wake() must fail with EAGAIN on a full pipe (a
  // pending byte already guarantees a wakeup), never block a worker.
  SetNonBlocking(wake_pipe_[1]);

  std::size_t workers = options_.worker_threads;
  if (workers == 0) {
    workers = std::max<std::size_t>(4, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(workers);
  running_.store(true);
  poll_thread_ = std::thread([this] { PollLoop(); });
  return Status::Ok();
}

void TcpServer::Wake() {
  const std::uint8_t byte = 1;
  for (;;) {
    const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
    if (n >= 0) return;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Invariant, not best-effort: the pipe is full, so >= 64KiB of wake
      // bytes are already pending and the dispatcher cannot miss the
      // wakeup — dropping this byte is level-triggered-safe. Counted so
      // tests and operators can see the (harmless, but burst-indicating)
      // condition instead of a discarded write result hiding it.
      stats_.wake_pipe_full_wakes->Add(1);
      return;
    }
    // EBADF/EPIPE during shutdown teardown is unreachable by
    // construction (Stop closes the pipe only after joining every
    // writer); anything else here is a real bug worth logging.
    CX_LOG(kError, "tcp") << "wake pipe write failed: " << std::strerror(errno);
    return;
  }
}

void TcpServer::PollLoop() {
  using clock = std::chrono::steady_clock;
  // Connections currently armed with the dispatcher (readable wait when
  // the outbound queue is empty, writable wait otherwise). Owned by this
  // thread; workers hand connections back through pending_rearm_.
  std::vector<int> armed;

  const auto lookup = [this](int fd) -> Conn* {
    std::lock_guard lock(mu_);
    auto it = conns_.find(fd);
    return it != conns_.end() ? it->second.get() : nullptr;
  };

  while (running_.load()) {
    std::vector<pollfd> fds;
    fds.reserve(armed.size() + 2);
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});

    // Arm each connection for the direction it is waiting on, and bound
    // the poll timeout by the nearest stall deadline so a reader that
    // never drains (no POLLOUT, no POLLIN) still gets disconnected.
    int timeout_ms = -1;
    const auto now = clock::now();
    for (int fd : armed) {
      Conn* c = lookup(fd);
      if (c == nullptr) continue;
      const short events =
          c->outq.empty() ? static_cast<short>(POLLIN)
                          : static_cast<short>(POLLOUT);
      fds.push_back({fd, events, 0});
      if (c->over_cap) {
        const auto deadline =
            c->stall_since + std::chrono::milliseconds(options_.stall_deadline_ms);
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
                .count();
        const int rem_ms = static_cast<int>(std::max<long long>(0, remaining));
        timeout_ms = timeout_ms < 0 ? rem_ms : std::min(timeout_ms, rem_ms);
      }
    }

    if (::poll(fds.data(), fds.size(), timeout_ms) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load()) break;

    // The poll set for the next iteration: connections that stay parked
    // here this round, plus fresh accepts and worker re-arms.
    std::vector<int> next_armed;
    next_armed.reserve(armed.size() + 4);

    if (fds[0].revents != 0) {
      std::uint8_t drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
      std::vector<int> rearm;
      std::vector<int> close_list;
      {
        std::lock_guard lock(mu_);
        rearm.swap(pending_rearm_);
        close_list.swap(pending_close_);
      }
      for (int fd : close_list) CloseConn(fd);
      for (int fd : rearm) next_armed.push_back(fd);
    }

    if (fds[1].revents != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN (drained) or shutdown
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        SetNonBlocking(fd);
        {
          std::lock_guard lock(mu_);
          auto conn = std::make_unique<Conn>();
          conn->fd = fd;
          conns_.emplace(fd, std::move(conn));
        }
        next_armed.push_back(fd);
      }
    }

    const auto after_poll = clock::now();
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      Conn* c = lookup(fd);
      if (c == nullptr) continue;

      if (!c->outq.empty()) {
        // Write-armed connection: flush on POLLOUT; anything else with
        // events set (POLLERR/POLLHUP/POLLNVAL) is a dead peer.
        if ((fds[i].revents & POLLOUT) != 0) {
          if (!FlushConn(*c)) {
            CloseConn(fd);
            continue;
          }
          if (c->outq.empty()) {
            if (c->close_after_drain) {
              CloseConn(fd);
              continue;
            }
            // Drained: intake may have been paused at the cap with
            // complete frames left in inbuf and unread bytes in the
            // kernel buffer — neither re-raises POLLIN by itself, so
            // hand the connection to a worker to resume parsing.
            c->readable_at = after_poll;
            if (!pool_->Submit([this, fd] { ServeReadable(fd); })) {
              CloseConn(fd);
            }
            continue;
          }
        } else if (fds[i].revents != 0) {
          CloseConn(fd);
          continue;
        }
        // Still write-blocked: enforce the stall deadline.
        if (c->over_cap &&
            after_poll - c->stall_since >=
                std::chrono::milliseconds(options_.stall_deadline_ms)) {
          stats_.slow_client_disconnects->Add(1);
          CX_LOG(kWarn, "tcp")
              << "disconnecting slow reader fd=" << fd << " ("
              << c->out_bytes << " bytes queued past deadline)";
          CloseConn(fd);
          continue;
        }
        next_armed.push_back(fd);
        continue;
      }

      // Read-armed connection: hand any activity (readable or hung-up)
      // to the pool; it leaves the poll set until the worker re-arms it,
      // so each connection has at most one worker and replies stay in
      // request order.
      if (fds[i].revents != 0) {
        c->readable_at = after_poll;
        if (!pool_->Submit([this, fd] { ServeReadable(fd); })) {
          CloseConn(fd);
        }
      } else {
        next_armed.push_back(fd);
      }
    }
    armed = std::move(next_armed);
  }
}

bool TcpServer::ParseFrames(Conn& c) {
  // Cursor-based scan: one erase of the consumed prefix at the end keeps
  // a pipelined burst O(bytes), not O(frames × bytes).
  std::size_t cursor = 0;
  while (!c.over_cap) {
    if (c.inbuf.size() - cursor < 4) break;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(c.inbuf[cursor + i]) << (i * 8);
    }
    if (len > kMaxFrameSize) {
      if (cursor > 0) c.inbuf.erase(c.inbuf.begin(), c.inbuf.begin() + cursor);
      return false;  // framing violation: unrecoverable, drop
    }
    if (c.inbuf.size() - cursor < 4 + static_cast<std::size_t>(len)) break;

    const auto parse_start = std::chrono::steady_clock::now();
    auto request = Request::Deserialize(std::span<const std::uint8_t>(
        c.inbuf.data() + cursor + 4, len));
    Response response;
    if (!request) {
      response.code = ErrorCode::kDataLoss;
      response.error = "malformed request";
    } else {
      // Stage stamps for the handler's trace record: dispatcher handoff
      // (readable_at -> worker_start), queue wait behind earlier frames
      // of this burst (worker_start -> parse_start), and the parse.
      request->timing.valid = true;
      request->timing.readable_at = c.readable_at;
      request->timing.worker_start = c.worker_start;
      request->timing.parse_start = parse_start;
      request->timing.parse_done = std::chrono::steady_clock::now();
      response = handler_.Handle(*request);
    }
    EnqueueResponse(c, response);
    cursor += 4 + static_cast<std::size_t>(len);
  }
  if (cursor > 0) c.inbuf.erase(c.inbuf.begin(), c.inbuf.begin() + cursor);
  return true;
}

void TcpServer::EnqueueResponse(Conn& c, const Response& response) {
  // Frame length prefix + serialized header + owned payload prefix
  // become ONE owned chunk; each zero-copy segment rides behind it by
  // reference — for a cache-hit GET the copied bytes end this function
  // at ~16 while the O(db) slice is shared across every polling
  // connection.
  const std::vector<std::uint8_t> header = response.SerializeHeader();
  std::size_t shared_bytes = 0;
  for (const auto& seg : response.segments) {
    if (seg != nullptr) shared_bytes += seg->size();
  }
  const std::size_t frame_len = header.size() + shared_bytes;

  OutChunk head;
  head.owned.reserve(4 + header.size());
  for (int i = 0; i < 4; ++i) {
    head.owned.push_back(static_cast<std::uint8_t>(frame_len >> (i * 8)));
  }
  head.owned.insert(head.owned.end(), header.begin(), header.end());
  c.outq.push_back(std::move(head));
  for (const auto& seg : response.segments) {
    if (seg != nullptr && !seg->empty()) {
      OutChunk chunk;
      chunk.shared = seg;
      c.outq.push_back(std::move(chunk));
    }
  }
  // The trace completes when the reply's FINAL byte run drains, so it
  // rides the last chunk (the shared tail for a zero-copy GET).
  if (response.trace != nullptr) {
    c.outq.back().trace = response.trace;
  }
  c.out_bytes += 4 + frame_len;

  // High-water mark (monotonic max over all connections).
  stats_.peak_outbound_queue_bytes->UpdateMax(c.out_bytes);

  if (!c.over_cap && c.out_bytes > options_.max_outbound_bytes) {
    // The stall clock starts at the cap crossing and is reset ONLY by
    // draining back under the cap (FlushConn) — partial progress does
    // not extend the deadline, so a reader that trickles 1 byte per
    // write cannot evade disconnection.
    c.over_cap = true;
    c.stall_since = std::chrono::steady_clock::now();
    stats_.backpressure_stalls->Add(1);
  }
}

bool TcpServer::FlushConn(Conn& c) {
  while (!c.outq.empty()) {
    iovec iov[kMaxIovPerFlush];
    std::size_t cnt = 0;
    for (const OutChunk& chunk : c.outq) {
      if (cnt == kMaxIovPerFlush) break;
      const std::vector<std::uint8_t>& bytes = chunk.bytes();
      iov[cnt].iov_base =
          const_cast<std::uint8_t*>(bytes.data() + chunk.offset);
      iov[cnt].iov_len = bytes.size() - chunk.offset;
      ++cnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = cnt;
    const ssize_t n = ::sendmsg(c.fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;  // kernel buffer full: POLLOUT will resume the flush
      }
      return false;
    }
    stats_.writev_flushes->Add(1);
    c.out_bytes -= static_cast<std::size_t>(n);
    std::size_t consumed = static_cast<std::size_t>(n);
    while (consumed > 0) {
      OutChunk& front = c.outq.front();
      const std::size_t rem = front.bytes().size() - front.offset;
      if (consumed >= rem) {
        consumed -= rem;
        if (front.trace != nullptr) {
          // Reply fully handed to the kernel: stamp the flush stage; the
          // pop below releases the PendingTrace, publishing the record.
          front.trace->CompleteFlush();
        }
        c.outq.pop_front();
      } else {
        front.offset += consumed;
        consumed = 0;
      }
    }
    if (c.over_cap && c.out_bytes <= options_.max_outbound_bytes) {
      c.over_cap = false;  // drained under the cap: stall cleared
    }
  }
  return true;
}

void TcpServer::ServeReadable(int fd) {
  Conn* c = nullptr;
  {
    std::lock_guard lock(mu_);
    auto it = conns_.find(fd);
    if (it != conns_.end()) c = it->second.get();
  }
  if (c == nullptr) return;  // raced with shutdown teardown
  c->worker_start = std::chrono::steady_clock::now();

  bool drop = false;
  for (;;) {
    if (!ParseFrames(*c)) {
      drop = true;
      break;
    }
    if (c->over_cap || c->close_after_drain) {
      // Backpressure (or peer EOF): stop consuming input. Unread bytes
      // stay in the kernel buffer, so TCP flow control throttles the
      // sender; leftover complete frames in inbuf resume after drain.
      break;
    }
    std::uint8_t buf[kReadChunk];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c->inbuf.insert(c->inbuf.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      // Peer EOF. Replies already queued for this burst still go out
      // (half-close friendly); the dispatcher closes once drained.
      c->close_after_drain = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    drop = true;
    break;
  }

  // End-of-burst flush: every reply queued above goes out in one gather
  // write (syscalls per burst, not per reply). Residue re-arms POLLOUT.
  if (!drop && !c->outq.empty() && !FlushConn(*c)) drop = true;
  if (!drop && c->close_after_drain && c->outq.empty()) drop = true;

  {
    std::lock_guard lock(mu_);
    if (drop) {
      pending_close_.push_back(fd);
    } else {
      pending_rearm_.push_back(fd);
    }
  }
  Wake();
}

void TcpServer::CloseConn(int fd) {
  bool do_close = false;
  {
    std::lock_guard lock(mu_);
    do_close = conns_.erase(fd) > 0;
  }
  if (do_close) ::close(fd);
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  // Unblock accept()/poll().
  ::shutdown(listen_fd_, SHUT_RDWR);
  Wake();
  if (poll_thread_.joinable()) poll_thread_.join();
  {
    std::lock_guard lock(mu_);
    for (auto& [fd, conn] : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  // Queued/in-flight workers see EOF/errors fast now; drain them all.
  // Conn objects stay alive until the pool is down — workers hold raw
  // pointers into the registry.
  pool_->Shutdown();

  std::vector<int> leftovers;
  {
    std::lock_guard lock(mu_);
    leftovers.reserve(conns_.size());
    for (auto& [fd, conn] : conns_) leftovers.push_back(fd);
    pending_rearm_.clear();
    pending_close_.clear();
  }
  for (int fd : leftovers) CloseConn(fd);

  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

TcpClient::~TcpClient() { Close(); }

Status TcpClient::Connect(const std::string& host, std::uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Error(ErrorCode::kUnavailable,
                         std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::Error(ErrorCode::kInvalidArgument, "bad host: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = Status::Error(
        ErrorCode::kUnavailable, std::string("connect: ") + std::strerror(errno));
    Close();
    return s;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

void TcpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpClient::Send(const Request& request) {
  if (fd_ < 0) {
    return Status::Error(ErrorCode::kFailedPrecondition, "not connected");
  }
  const auto out = request.Serialize();
  return WriteFrame(fd_,
                    std::span<const std::uint8_t>(out.data(), out.size()));
}

Result<Response> TcpClient::Receive() {
  if (fd_ < 0) {
    return Status::Error(ErrorCode::kFailedPrecondition, "not connected");
  }
  auto frame = ReadFrame(fd_, kMaxFrameSize);
  if (!frame.ok()) return frame.status();
  auto response = Response::Deserialize(std::span<const std::uint8_t>(
      frame.value().data(), frame.value().size()));
  if (!response) {
    return Status::Error(ErrorCode::kDataLoss, "malformed response");
  }
  return *response;
}

Result<Response> TcpClient::Call(const Request& request) {
  if (auto s = Send(request); !s.ok()) return s;
  return Receive();
}

Status ReconnectingTcpClient::EnsureConnected() {
  if (client_.connected()) return Status::Ok();
  if (auto s = client_.Connect(host_, port_); !s.ok()) return s;
  ++connects_;
  return Status::Ok();
}

void ReconnectingTcpClient::Drop() { client_.Close(); }

Status ReconnectingTcpClient::Send(const Request& request) {
  if (auto s = EnsureConnected(); !s.ok()) return s;
  const Status s = client_.Send(request);
  if (!s.ok()) Drop();
  return s;
}

Result<Response> ReconnectingTcpClient::Receive() {
  // No lazy connect here: a Receive with no connection has no matching
  // Send, which is a caller pairing bug, not a transport hiccup.
  auto r = client_.Receive();
  if (!r.ok()) Drop();
  return r;
}

Result<Response> ReconnectingTcpClient::Call(const Request& request) {
  if (auto s = Send(request); !s.ok()) return s;
  return Receive();
}

}  // namespace communix::net
