#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.hpp"

namespace communix::net {

namespace {

Status WriteAll(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Error(ErrorCode::kUnavailable,
                           std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status ReadAll(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Error(ErrorCode::kUnavailable,
                           std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::Error(ErrorCode::kUnavailable, "connection closed");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status WriteFrame(int fd, std::span<const std::uint8_t> body) {
  std::uint8_t header[4];
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(len >> (i * 8));
  }
  if (auto s = WriteAll(fd, header, 4); !s.ok()) return s;
  return WriteAll(fd, body.data(), body.size());
}

Result<std::vector<std::uint8_t>> ReadFrame(int fd, std::size_t max_size) {
  std::uint8_t header[4];
  if (auto s = ReadAll(fd, header, 4); !s.ok()) return s;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[i]) << (i * 8);
  }
  if (len > max_size) {
    return Status::Error(ErrorCode::kDataLoss, "frame exceeds size limit");
  }
  std::vector<std::uint8_t> body(len);
  if (len > 0) {
    if (auto s = ReadAll(fd, body.data(), len); !s.ok()) return s;
  }
  return body;
}

TcpServer::TcpServer(RequestHandler& handler, std::uint16_t port)
    : handler_(handler), port_(port) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Error(ErrorCode::kUnavailable,
                         std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Error(ErrorCode::kUnavailable,
                         std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 1024) < 0) {
    return Status::Error(ErrorCode::kUnavailable,
                         std::string("listen: ") + std::strerror(errno));
  }
  if (port_ == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      if (errno == EINTR) continue;
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(conns_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  while (running_.load()) {
    auto frame = ReadFrame(fd, kMaxFrameSize);
    if (!frame.ok()) break;
    auto request = Request::Deserialize(std::span<const std::uint8_t>(
        frame.value().data(), frame.value().size()));
    Response response;
    if (!request) {
      response.code = ErrorCode::kDataLoss;
      response.error = "malformed request";
    } else {
      response = handler_.Handle(*request);
    }
    const auto out = response.Serialize();
    if (auto s = WriteFrame(fd, std::span<const std::uint8_t>(out.data(),
                                                              out.size()));
        !s.ok()) {
      break;
    }
  }
  ::close(fd);
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  // Unblock accept() and connection reads.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard lock(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard lock(conns_mu_);
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
  conn_fds_.clear();
}

TcpClient::~TcpClient() { Close(); }

Status TcpClient::Connect(const std::string& host, std::uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Error(ErrorCode::kUnavailable,
                         std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::Error(ErrorCode::kInvalidArgument, "bad host: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = Status::Error(
        ErrorCode::kUnavailable, std::string("connect: ") + std::strerror(errno));
    Close();
    return s;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

void TcpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Response> TcpClient::Call(const Request& request) {
  if (fd_ < 0) {
    return Status::Error(ErrorCode::kFailedPrecondition, "not connected");
  }
  const auto out = request.Serialize();
  if (auto s =
          WriteFrame(fd_, std::span<const std::uint8_t>(out.data(), out.size()));
      !s.ok()) {
    return s;
  }
  auto frame = ReadFrame(fd_, kMaxFrameSize);
  if (!frame.ok()) return frame.status();
  auto response = Response::Deserialize(std::span<const std::uint8_t>(
      frame.value().data(), frame.value().size()));
  if (!response) {
    return Status::Error(ErrorCode::kDataLoss, "malformed response");
  }
  return *response;
}

}  // namespace communix::net
