#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/logging.hpp"

namespace communix::net {

namespace {

Status WriteAll(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Error(ErrorCode::kUnavailable,
                           std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status ReadAll(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Error(ErrorCode::kUnavailable,
                           std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::Error(ErrorCode::kUnavailable, "connection closed");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Pool workers read/write connection sockets with blocking calls; a
/// peer that stalls mid-frame must cost one worker a bounded time, not
/// forever (idle connections wait in poll(), so this only fires on a
/// half-sent frame or a reply the peer refuses to drain).
constexpr int kConnIoTimeoutSeconds = 30;

void SetIoTimeouts(int fd) {
  timeval tv{};
  tv.tv_sec = kConnIoTimeoutSeconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// True when at least one more byte is already buffered on `fd`
/// (pipelined request behind the one just served).
bool HasBufferedData(int fd) {
  std::uint8_t byte = 0;
  const ssize_t n = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  return n > 0;
}

}  // namespace

Status WriteFrame(int fd, std::span<const std::uint8_t> body) {
  std::uint8_t header[4];
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(len >> (i * 8));
  }
  if (auto s = WriteAll(fd, header, 4); !s.ok()) return s;
  return WriteAll(fd, body.data(), body.size());
}

Result<std::vector<std::uint8_t>> ReadFrame(int fd, std::size_t max_size) {
  std::uint8_t header[4];
  if (auto s = ReadAll(fd, header, 4); !s.ok()) return s;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[i]) << (i * 8);
  }
  if (len > max_size) {
    return Status::Error(ErrorCode::kDataLoss, "frame exceeds size limit");
  }
  std::vector<std::uint8_t> body(len);
  if (len > 0) {
    if (auto s = ReadAll(fd, body.data(), len); !s.ok()) return s;
  }
  return body;
}

TcpServer::TcpServer(RequestHandler& handler, std::uint16_t port)
    : TcpServer(handler, Options{port, 0}) {}

TcpServer::TcpServer(RequestHandler& handler, const Options& options)
    : handler_(handler), options_(options), port_(options.port) {}

TcpServer::~TcpServer() { Stop(); }

std::size_t TcpServer::worker_threads() const {
  return pool_ ? pool_->size() : 0;
}

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Error(ErrorCode::kUnavailable,
                         std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s = Status::Error(
        ErrorCode::kUnavailable, std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 1024) < 0) {
    const Status s = Status::Error(
        ErrorCode::kUnavailable,
        std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (port_ == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::pipe(wake_pipe_) < 0) {
    const Status s = Status::Error(
        ErrorCode::kUnavailable, std::string("pipe: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  SetNonBlocking(listen_fd_);
  SetNonBlocking(wake_pipe_[0]);
  // The write end too: Wake() must fail with EAGAIN on a full pipe (a
  // pending byte already guarantees a wakeup), never block a worker.
  SetNonBlocking(wake_pipe_[1]);

  std::size_t workers = options_.worker_threads;
  if (workers == 0) {
    workers = std::max<std::size_t>(4, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(workers);
  running_.store(true);
  poll_thread_ = std::thread([this] { PollLoop(); });
  return Status::Ok();
}

void TcpServer::Wake() {
  const std::uint8_t byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  (void)!::write(wake_pipe_[1], &byte, 1);
}

void TcpServer::PollLoop() {
  // Connections currently armed for readability. Owned by this thread;
  // workers hand connections back through pending_rearm_.
  std::vector<int> idle;

  while (running_.load()) {
    std::vector<pollfd> fds;
    fds.reserve(idle.size() + 2);
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (int fd : idle) fds.push_back({fd, POLLIN, 0});

    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load()) break;

    // The poll set for the next iteration: connections that stayed quiet
    // this round, plus fresh accepts and worker re-arms.
    std::vector<int> next_idle;
    next_idle.reserve(idle.size() + 4);

    if (fds[0].revents != 0) {
      std::uint8_t drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
      std::vector<int> rearm;
      std::vector<int> close_list;
      {
        std::lock_guard lock(mu_);
        rearm.swap(pending_rearm_);
        close_list.swap(pending_close_);
      }
      for (int fd : close_list) CloseConn(fd);
      for (int fd : rearm) next_idle.push_back(fd);
    }

    if (fds[1].revents != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN (drained) or shutdown
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        SetIoTimeouts(fd);
        {
          std::lock_guard lock(mu_);
          conn_fds_.insert(fd);
        }
        next_idle.push_back(fd);
      }
    }

    // Hand every readable (or hung-up) connection to the pool; it leaves
    // the poll set until the worker re-arms it, so each connection has at
    // most one worker and replies stay in request order.
    for (std::size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents != 0) {
        const int fd = fds[i].fd;
        if (!pool_->Submit([this, fd] { ServeReadable(fd); })) {
          CloseConn(fd);
        }
      } else {
        next_idle.push_back(fds[i].fd);
      }
    }
    idle = std::move(next_idle);
  }
}

void TcpServer::ServeReadable(int fd) {
  bool drop = false;
  do {
    auto frame = ReadFrame(fd, kMaxFrameSize);
    if (!frame.ok()) {
      drop = true;
      break;
    }
    auto request = Request::Deserialize(std::span<const std::uint8_t>(
        frame.value().data(), frame.value().size()));
    Response response;
    if (!request) {
      response.code = ErrorCode::kDataLoss;
      response.error = "malformed request";
    } else {
      response = handler_.Handle(*request);
    }
    const auto out = response.Serialize();
    if (auto s = WriteFrame(
            fd, std::span<const std::uint8_t>(out.data(), out.size()));
        !s.ok()) {
      drop = true;
      break;
    }
    // Keep draining while the client has pipelined more request bytes;
    // otherwise give the worker back and let poll() watch the socket.
  } while (HasBufferedData(fd));

  {
    std::lock_guard lock(mu_);
    if (drop) {
      pending_close_.push_back(fd);
    } else {
      pending_rearm_.push_back(fd);
    }
  }
  Wake();
}

void TcpServer::CloseConn(int fd) {
  bool do_close = false;
  {
    std::lock_guard lock(mu_);
    do_close = conn_fds_.erase(fd) > 0;
  }
  if (do_close) ::close(fd);
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  // Unblock accept()/poll() and in-flight connection reads.
  ::shutdown(listen_fd_, SHUT_RDWR);
  Wake();
  if (poll_thread_.joinable()) poll_thread_.join();
  {
    std::lock_guard lock(mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Queued/in-flight workers fail their reads fast now; drain them all.
  pool_->Shutdown();

  std::vector<int> leftovers;
  {
    std::lock_guard lock(mu_);
    leftovers.assign(conn_fds_.begin(), conn_fds_.end());
    pending_rearm_.clear();
    pending_close_.clear();
  }
  for (int fd : leftovers) CloseConn(fd);

  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

TcpClient::~TcpClient() { Close(); }

Status TcpClient::Connect(const std::string& host, std::uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Error(ErrorCode::kUnavailable,
                         std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::Error(ErrorCode::kInvalidArgument, "bad host: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = Status::Error(
        ErrorCode::kUnavailable, std::string("connect: ") + std::strerror(errno));
    Close();
    return s;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

void TcpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpClient::Send(const Request& request) {
  if (fd_ < 0) {
    return Status::Error(ErrorCode::kFailedPrecondition, "not connected");
  }
  const auto out = request.Serialize();
  return WriteFrame(fd_,
                    std::span<const std::uint8_t>(out.data(), out.size()));
}

Result<Response> TcpClient::Receive() {
  if (fd_ < 0) {
    return Status::Error(ErrorCode::kFailedPrecondition, "not connected");
  }
  auto frame = ReadFrame(fd_, kMaxFrameSize);
  if (!frame.ok()) return frame.status();
  auto response = Response::Deserialize(std::span<const std::uint8_t>(
      frame.value().data(), frame.value().size()));
  if (!response) {
    return Status::Error(ErrorCode::kDataLoss, "malformed response");
  }
  return *response;
}

Result<Response> TcpClient::Call(const Request& request) {
  if (auto s = Send(request); !s.ok()) return s;
  return Receive();
}

}  // namespace communix::net
