#include "net/message.hpp"

namespace communix::net {

std::vector<std::uint8_t> Request::Serialize() const {
  BinaryWriter w;
  w.WriteU8(static_cast<std::uint8_t>(type));
  w.WriteBytes(std::span<const std::uint8_t>(payload.data(), payload.size()));
  return w.take();
}

std::optional<Request> Request::Deserialize(
    std::span<const std::uint8_t> bytes) {
  BinaryReader r(bytes);
  Request req;
  const std::uint8_t t = r.ReadU8();
  if (t > static_cast<std::uint8_t>(MsgType::kStats)) {
    return std::nullopt;
  }
  req.type = static_cast<MsgType>(t);
  req.payload = r.ReadBytes();
  if (!r.AtEnd()) return std::nullopt;
  return req;
}

Request BuildAddBatchRequest(
    std::span<const std::uint8_t> token16,
    std::span<const std::vector<std::uint8_t>> serialized_sigs) {
  BinaryWriter w;
  w.WriteRaw(token16);
  w.WriteU32(static_cast<std::uint32_t>(serialized_sigs.size()));
  for (const auto& sig : serialized_sigs) {
    w.WriteBytes(std::span<const std::uint8_t>(sig.data(), sig.size()));
  }
  Request req;
  req.type = MsgType::kAddBatch;
  req.payload = w.take();
  return req;
}

std::optional<std::vector<ErrorCode>> ParseAddBatchResponse(
    const Response& resp) {
  BinaryReader r(
      std::span<const std::uint8_t>(resp.payload.data(), resp.payload.size()));
  const std::uint32_t count = r.ReadU32();
  // One byte per code: a count beyond the remaining payload is malformed
  // (checked before the reserve so it can't force a giant allocation).
  if (count > r.remaining()) return std::nullopt;
  std::vector<ErrorCode> codes;
  codes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    codes.push_back(static_cast<ErrorCode>(r.ReadU8()));
  }
  if (!r.AtEnd()) return std::nullopt;
  return codes;
}

namespace {

// Entry list encoding shared by both replication verbs: u32 count, then
// per entry u64 sender + i64 added_at + length-prefixed signature bytes.
constexpr std::size_t kMinReplEntryBytes = 8 + 8 + 4;

void WriteReplEntries(BinaryWriter& w, const std::vector<ReplEntry>& entries) {
  w.WriteU32(static_cast<std::uint32_t>(entries.size()));
  for (const ReplEntry& e : entries) {
    w.WriteU64(e.sender);
    w.WriteI64(e.added_at);
    w.WriteBytes(
        std::span<const std::uint8_t>(e.sig_bytes.data(), e.sig_bytes.size()));
  }
}

bool ReadReplEntries(BinaryReader& r, std::vector<ReplEntry>& out) {
  const std::uint32_t count = r.ReadU32();
  // Checked before the reserve so a hostile count can't force a giant
  // allocation (same defense as the kAddBatch parser).
  if (!r.ok() || count > r.remaining() / kMinReplEntryBytes) return false;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ReplEntry e;
    e.sender = r.ReadU64();
    e.added_at = r.ReadI64();
    e.sig_bytes = r.ReadBytes();
    if (!r.ok()) return false;
    out.push_back(std::move(e));
  }
  return true;
}

BinaryReader PayloadReader(const std::vector<std::uint8_t>& payload) {
  return BinaryReader(
      std::span<const std::uint8_t>(payload.data(), payload.size()));
}

}  // namespace

Request BuildReplPullRequest(const ReplPullRequest& pull) {
  BinaryWriter w;
  w.WriteRaw(
      std::span<const std::uint8_t>(pull.token.data(), pull.token.size()));
  w.WriteU64(pull.epoch);
  w.WriteU64(pull.from_index);
  w.WriteU32(pull.limit);
  Request req;
  req.type = MsgType::kReplPull;
  req.payload = w.take();
  return req;
}

std::optional<ReplPullRequest> ParseReplPullRequest(const Request& req) {
  if (req.type != MsgType::kReplPull) return std::nullopt;
  BinaryReader r = PayloadReader(req.payload);
  ReplPullRequest pull;
  pull.token = r.ReadRaw(16);
  if (pull.token.size() != 16) return std::nullopt;
  pull.epoch = r.ReadU64();
  pull.from_index = r.ReadU64();
  pull.limit = r.ReadU32();
  if (!r.AtEnd()) return std::nullopt;
  return pull;
}

Response BuildReplPullReply(const ReplPullReply& reply) {
  BinaryWriter w;
  w.WriteU64(reply.epoch);
  w.WriteU64(reply.log_size);
  w.WriteU8(reply.reset ? 1 : 0);
  w.WriteU64(reply.start_index);
  WriteReplEntries(w, reply.entries);
  Response resp;
  resp.payload = w.take();
  return resp;
}

std::optional<ReplPullReply> ParseReplPullReply(const Response& resp) {
  BinaryReader r = PayloadReader(resp.payload);
  ReplPullReply reply;
  reply.epoch = r.ReadU64();
  reply.log_size = r.ReadU64();
  const std::uint8_t reset = r.ReadU8();
  if (reset > 1) return std::nullopt;
  reply.reset = reset != 0;
  reply.start_index = r.ReadU64();
  if (!ReadReplEntries(r, reply.entries) || !r.AtEnd()) return std::nullopt;
  return reply;
}

Request BuildReplBatchRequest(const ReplBatchRequest& batch) {
  BinaryWriter w;
  w.WriteRaw(
      std::span<const std::uint8_t>(batch.token.data(), batch.token.size()));
  w.WriteU64(batch.epoch);
  w.WriteU8(batch.reset ? 1 : 0);
  w.WriteU64(batch.from_index);
  WriteReplEntries(w, batch.entries);
  Request req;
  req.type = MsgType::kReplBatch;
  req.payload = w.take();
  return req;
}

std::optional<ReplBatchRequest> ParseReplBatchRequest(const Request& req) {
  if (req.type != MsgType::kReplBatch) return std::nullopt;
  BinaryReader r = PayloadReader(req.payload);
  ReplBatchRequest batch;
  batch.token = r.ReadRaw(16);
  if (batch.token.size() != 16) return std::nullopt;
  batch.epoch = r.ReadU64();
  const std::uint8_t reset = r.ReadU8();
  if (reset > 1) return std::nullopt;
  batch.reset = reset != 0;
  batch.from_index = r.ReadU64();
  if (!ReadReplEntries(r, batch.entries) || !r.AtEnd()) return std::nullopt;
  return batch;
}

Response BuildReplBatchReply(const ReplBatchReply& reply) {
  BinaryWriter w;
  w.WriteU64(reply.epoch);
  w.WriteU64(reply.log_size);
  Response resp;
  resp.payload = w.take();
  return resp;
}

std::optional<ReplBatchReply> ParseReplBatchReply(const Response& resp) {
  BinaryReader r = PayloadReader(resp.payload);
  ReplBatchReply reply;
  reply.epoch = r.ReadU64();
  reply.log_size = r.ReadU64();
  if (!r.AtEnd()) return std::nullopt;
  return reply;
}

Request BuildCheckpointRequest(const CheckpointTransfer& ckpt) {
  BinaryWriter w;
  w.WriteRaw(
      std::span<const std::uint8_t>(ckpt.token.data(), ckpt.token.size()));
  w.WriteBytes(
      std::span<const std::uint8_t>(ckpt.blob.data(), ckpt.blob.size()));
  Request req;
  req.type = MsgType::kCheckpoint;
  req.payload = w.take();
  return req;
}

std::optional<CheckpointTransfer> ParseCheckpointRequest(const Request& req) {
  if (req.type != MsgType::kCheckpoint) return std::nullopt;
  BinaryReader r = PayloadReader(req.payload);
  CheckpointTransfer ckpt;
  ckpt.token = r.ReadRaw(16);
  if (ckpt.token.size() != 16) return std::nullopt;
  ckpt.blob = r.ReadBytes();
  if (!r.ok() || !r.AtEnd()) return std::nullopt;
  return ckpt;
}

Request BuildMarkSupersededRequest(const MarkSupersededRequest& mark) {
  BinaryWriter w;
  w.WriteRaw(
      std::span<const std::uint8_t>(mark.token.data(), mark.token.size()));
  w.WriteU32(static_cast<std::uint32_t>(mark.content_ids.size()));
  for (std::uint64_t id : mark.content_ids) w.WriteU64(id);
  Request req;
  req.type = MsgType::kMarkSuperseded;
  req.payload = w.take();
  return req;
}

std::optional<MarkSupersededRequest> ParseMarkSupersededRequest(
    const Request& req) {
  if (req.type != MsgType::kMarkSuperseded) return std::nullopt;
  BinaryReader r = PayloadReader(req.payload);
  MarkSupersededRequest mark;
  mark.token = r.ReadRaw(16);
  if (mark.token.size() != 16) return std::nullopt;
  const std::uint32_t count = r.ReadU32();
  // Eight bytes per content id: a count beyond the remaining payload is
  // malformed (checked before the reserve so a hostile count can't force
  // a giant allocation — same defense as the repl-entry parsers).
  if (!r.ok() || count > r.remaining() / 8) return std::nullopt;
  mark.content_ids.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    mark.content_ids.push_back(r.ReadU64());
  }
  if (!r.AtEnd()) return std::nullopt;
  return mark;
}

Response BuildMarkSupersededReply(std::uint32_t marked) {
  BinaryWriter w;
  w.WriteU32(marked);
  Response resp;
  resp.payload = w.take();
  return resp;
}

std::optional<std::uint32_t> ParseMarkSupersededReply(const Response& resp) {
  BinaryReader r = PayloadReader(resp.payload);
  const std::uint32_t marked = r.ReadU32();
  if (!r.ok() || !r.AtEnd()) return std::nullopt;
  return marked;
}

Request BuildStatsRequest(const StatsRequest& stats) {
  BinaryWriter w;
  std::uint8_t flags = 0;
  if (stats.include_metrics) flags |= 1;
  if (stats.include_traces) flags |= 2;
  w.WriteU8(flags);
  w.WriteU32(stats.max_traces);
  Request req;
  req.type = MsgType::kStats;
  req.payload = w.take();
  return req;
}

std::optional<StatsRequest> ParseStatsRequest(const Request& req) {
  if (req.type != MsgType::kStats) return std::nullopt;
  BinaryReader r = PayloadReader(req.payload);
  const std::uint8_t flags = r.ReadU8();
  if (flags > 3) return std::nullopt;  // reserved bits must be zero
  StatsRequest stats;
  stats.include_metrics = (flags & 1) != 0;
  stats.include_traces = (flags & 2) != 0;
  stats.max_traces = r.ReadU32();
  if (!r.AtEnd()) return std::nullopt;
  return stats;
}

namespace {

// Per-entry floor sizes for the kStats reply lists: used to reject a
// hostile count before it can size a reserve (same defense as the
// repl-entry parsers).
constexpr std::size_t kMinNamedU64Bytes = 4 + 8;          // name len + value
constexpr std::size_t kMinHistogramBytes = 4 + 8 + 8 + 4; // name + count +
                                                          // sum + bucket count
constexpr std::size_t kTraceBytes = 1 + 1 + 8 + 8 + 6 * 8;

void WriteNamedU64s(
    BinaryWriter& w,
    const std::vector<std::pair<std::string, std::uint64_t>>& kvs) {
  w.WriteU32(static_cast<std::uint32_t>(kvs.size()));
  for (const auto& [name, value] : kvs) {
    w.WriteString(name);
    w.WriteU64(value);
  }
}

bool ReadNamedU64s(BinaryReader& r,
                   std::vector<std::pair<std::string, std::uint64_t>>& out) {
  const std::uint32_t count = r.ReadU32();
  if (!r.ok() || count > r.remaining() / kMinNamedU64Bytes) return false;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = r.ReadString();
    const std::uint64_t value = r.ReadU64();
    if (!r.ok()) return false;
    out.emplace_back(std::move(name), value);
  }
  return true;
}

}  // namespace

Response BuildStatsReply(const obs::MetricsSnapshot& snap) {
  BinaryWriter w;
  w.WriteU32(snap.version);
  w.WriteU64(snap.captured_unix_ns);
  WriteNamedU64s(w, snap.counters);
  WriteNamedU64s(w, snap.gauges);
  w.WriteU32(static_cast<std::uint32_t>(snap.histograms.size()));
  for (const auto& [name, h] : snap.histograms) {
    w.WriteString(name);
    w.WriteU64(h.count);
    w.WriteU64(h.sum_ns);
    std::uint32_t nonzero = 0;
    for (const auto b : h.buckets) nonzero += b != 0 ? 1 : 0;
    w.WriteU32(nonzero);
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      w.WriteU8(static_cast<std::uint8_t>(i));
      w.WriteU64(h.buckets[i]);
    }
  }
  w.WriteU32(static_cast<std::uint32_t>(snap.traces.size()));
  for (const auto& t : snap.traces) {
    w.WriteU8(t.verb);
    w.WriteU8(t.status);
    w.WriteU64(t.start_unix_ns);
    w.WriteU64(t.total_ns);
    for (const auto ns : t.stage_ns) w.WriteU64(ns);
  }
  Response resp;
  resp.payload = w.take();
  return resp;
}

std::optional<obs::MetricsSnapshot> ParseStatsReply(const Response& resp) {
  BinaryReader r = PayloadReader(resp.payload);
  obs::MetricsSnapshot snap;
  snap.version = r.ReadU32();
  if (!r.ok() || snap.version == 0 || snap.version > obs::kSnapshotVersion) {
    return std::nullopt;
  }
  snap.captured_unix_ns = r.ReadU64();
  if (!ReadNamedU64s(r, snap.counters)) return std::nullopt;
  if (!ReadNamedU64s(r, snap.gauges)) return std::nullopt;
  const std::uint32_t n_hist = r.ReadU32();
  if (!r.ok() || n_hist > r.remaining() / kMinHistogramBytes) {
    return std::nullopt;
  }
  snap.histograms.reserve(n_hist);
  for (std::uint32_t i = 0; i < n_hist; ++i) {
    std::string name = r.ReadString();
    obs::HistogramSnapshot h;
    h.count = r.ReadU64();
    h.sum_ns = r.ReadU64();
    const std::uint32_t nonzero = r.ReadU32();
    // 9 bytes per (index, count) pair; also bounded by the bucket count
    // itself, so duplicate-index spam can't inflate the list.
    if (!r.ok() || nonzero > obs::kHistogramBuckets ||
        nonzero > r.remaining() / 9) {
      return std::nullopt;
    }
    for (std::uint32_t b = 0; b < nonzero; ++b) {
      const std::uint8_t idx = r.ReadU8();
      const std::uint64_t cnt = r.ReadU64();
      if (!r.ok() || idx >= obs::kHistogramBuckets || cnt == 0) {
        return std::nullopt;
      }
      h.buckets[idx] = cnt;
    }
    snap.histograms.emplace_back(std::move(name), h);
  }
  const std::uint32_t n_traces = r.ReadU32();
  if (!r.ok() || n_traces > r.remaining() / kTraceBytes) return std::nullopt;
  snap.traces.reserve(n_traces);
  for (std::uint32_t i = 0; i < n_traces; ++i) {
    obs::TraceRecord t;
    t.verb = r.ReadU8();
    t.status = r.ReadU8();
    t.start_unix_ns = r.ReadU64();
    t.total_ns = r.ReadU64();
    for (auto& ns : t.stage_ns) ns = r.ReadU64();
    if (!r.ok()) return std::nullopt;
    snap.traces.push_back(t);
  }
  if (!r.AtEnd()) return std::nullopt;
  return snap;
}

std::size_t Response::payload_size() const {
  std::size_t total = payload.size();
  for (const auto& seg : segments) {
    if (seg != nullptr) total += seg->size();
  }
  return total;
}

std::vector<std::uint8_t> Response::FlattenedPayload() const {
  std::vector<std::uint8_t> flat;
  flat.reserve(payload_size());
  flat.insert(flat.end(), payload.begin(), payload.end());
  for (const auto& seg : segments) {
    if (seg != nullptr) flat.insert(flat.end(), seg->begin(), seg->end());
  }
  return flat;
}

std::vector<std::uint8_t> Response::SerializeHeader() const {
  BinaryWriter w;
  w.WriteU8(static_cast<std::uint8_t>(code));
  w.WriteString(error);
  // Length prefix covers the logical payload (owned prefix + segments);
  // only the owned prefix follows here. A gather writer appends the
  // segment bytes verbatim, making the stream byte-identical to
  // Serialize()'s flat encoding — the receiver can't tell them apart.
  w.WriteU32(static_cast<std::uint32_t>(payload_size()));
  w.WriteRaw(std::span<const std::uint8_t>(payload.data(), payload.size()));
  return w.take();
}

std::vector<std::uint8_t> Response::Serialize() const {
  std::vector<std::uint8_t> bytes = SerializeHeader();
  bytes.reserve(bytes.size() + payload_size() - payload.size());
  for (const auto& seg : segments) {
    if (seg != nullptr) bytes.insert(bytes.end(), seg->begin(), seg->end());
  }
  return bytes;
}

std::optional<Response> Response::Deserialize(
    std::span<const std::uint8_t> bytes) {
  BinaryReader r(bytes);
  Response resp;
  resp.code = static_cast<ErrorCode>(r.ReadU8());
  resp.error = r.ReadString();
  resp.payload = r.ReadBytes();
  if (!r.AtEnd()) return std::nullopt;
  return resp;
}

}  // namespace communix::net
