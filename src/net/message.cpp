#include "net/message.hpp"

namespace communix::net {

std::vector<std::uint8_t> Request::Serialize() const {
  BinaryWriter w;
  w.WriteU8(static_cast<std::uint8_t>(type));
  w.WriteBytes(std::span<const std::uint8_t>(payload.data(), payload.size()));
  return w.take();
}

std::optional<Request> Request::Deserialize(
    std::span<const std::uint8_t> bytes) {
  BinaryReader r(bytes);
  Request req;
  const std::uint8_t t = r.ReadU8();
  if (t > static_cast<std::uint8_t>(MsgType::kIssueId)) return std::nullopt;
  req.type = static_cast<MsgType>(t);
  req.payload = r.ReadBytes();
  if (!r.AtEnd()) return std::nullopt;
  return req;
}

std::vector<std::uint8_t> Response::Serialize() const {
  BinaryWriter w;
  w.WriteU8(static_cast<std::uint8_t>(code));
  w.WriteString(error);
  w.WriteBytes(std::span<const std::uint8_t>(payload.data(), payload.size()));
  return w.take();
}

std::optional<Response> Response::Deserialize(
    std::span<const std::uint8_t> bytes) {
  BinaryReader r(bytes);
  Response resp;
  resp.code = static_cast<ErrorCode>(r.ReadU8());
  resp.error = r.ReadString();
  resp.payload = r.ReadBytes();
  if (!r.AtEnd()) return std::nullopt;
  return resp;
}

}  // namespace communix::net
