#include "net/message.hpp"

namespace communix::net {

std::vector<std::uint8_t> Request::Serialize() const {
  BinaryWriter w;
  w.WriteU8(static_cast<std::uint8_t>(type));
  w.WriteBytes(std::span<const std::uint8_t>(payload.data(), payload.size()));
  return w.take();
}

std::optional<Request> Request::Deserialize(
    std::span<const std::uint8_t> bytes) {
  BinaryReader r(bytes);
  Request req;
  const std::uint8_t t = r.ReadU8();
  if (t > static_cast<std::uint8_t>(MsgType::kAddBatch)) return std::nullopt;
  req.type = static_cast<MsgType>(t);
  req.payload = r.ReadBytes();
  if (!r.AtEnd()) return std::nullopt;
  return req;
}

Request BuildAddBatchRequest(
    std::span<const std::uint8_t> token16,
    std::span<const std::vector<std::uint8_t>> serialized_sigs) {
  BinaryWriter w;
  w.WriteRaw(token16);
  w.WriteU32(static_cast<std::uint32_t>(serialized_sigs.size()));
  for (const auto& sig : serialized_sigs) {
    w.WriteBytes(std::span<const std::uint8_t>(sig.data(), sig.size()));
  }
  Request req;
  req.type = MsgType::kAddBatch;
  req.payload = w.take();
  return req;
}

std::optional<std::vector<ErrorCode>> ParseAddBatchResponse(
    const Response& resp) {
  BinaryReader r(
      std::span<const std::uint8_t>(resp.payload.data(), resp.payload.size()));
  const std::uint32_t count = r.ReadU32();
  // One byte per code: a count beyond the remaining payload is malformed
  // (checked before the reserve so it can't force a giant allocation).
  if (count > r.remaining()) return std::nullopt;
  std::vector<ErrorCode> codes;
  codes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    codes.push_back(static_cast<ErrorCode>(r.ReadU8()));
  }
  if (!r.AtEnd()) return std::nullopt;
  return codes;
}

std::vector<std::uint8_t> Response::Serialize() const {
  BinaryWriter w;
  w.WriteU8(static_cast<std::uint8_t>(code));
  w.WriteString(error);
  w.WriteBytes(std::span<const std::uint8_t>(payload.data(), payload.size()));
  return w.take();
}

std::optional<Response> Response::Deserialize(
    std::span<const std::uint8_t> bytes) {
  BinaryReader r(bytes);
  Response resp;
  resp.code = static_cast<ErrorCode>(r.ReadU8());
  resp.error = r.ReadString();
  resp.payload = r.ReadBytes();
  if (!r.AtEnd()) return std::nullopt;
  return resp;
}

}  // namespace communix::net
