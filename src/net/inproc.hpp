// In-process transports: calls the handler directly.
//
// Used by Figure 2 (which measures the server's request-processing
// routines without network I/O), by the agent/client unit tests, and by
// the examples when a real socket adds nothing.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace communix::net {

class InprocTransport final : public ClientTransport {
 public:
  explicit InprocTransport(RequestHandler& handler) : handler_(handler) {}

  Result<Response> Call(const Request& request) override;

 private:
  RequestHandler& handler_;
};

/// Pipelined in-process transport: Send serializes and buffers the
/// request; Receive pops the oldest buffered frame, runs it through the
/// handler, and returns the reply — so the split request/response
/// halves follow the same "replies arrive in request order, one
/// logical stream per transport" contract as TcpClient, without
/// sockets. Receive with nothing outstanding is the caller's bug and
/// fails with kFailedPrecondition.
///
/// An optional event log (shared across transports, single-threaded
/// callers only) records "send <tag>" / "recv <tag>" in call order, so
/// a test can assert a caller actually pipelined — all Sends issued
/// before any Receive — rather than degenerating to Call's
/// send/recv/send/recv interleaving.
class PipelinedInprocTransport final : public PipelinedClientTransport {
 public:
  PipelinedInprocTransport(RequestHandler& handler, std::string tag = "",
                           std::vector<std::string>* event_log = nullptr)
      : handler_(handler), tag_(std::move(tag)), event_log_(event_log) {}

  /// Call ≡ Send + Receive (still logs both halves).
  Result<Response> Call(const Request& request) override;
  Status Send(const Request& request) override;
  Result<Response> Receive() override;

  std::size_t outstanding() const { return inflight_.size(); }

 private:
  RequestHandler& handler_;
  std::string tag_;
  std::vector<std::string>* event_log_;
  /// Serialized frames sent but not yet received (FIFO).
  std::deque<std::vector<std::uint8_t>> inflight_;
};

}  // namespace communix::net
