// In-process transport: calls the handler directly.
//
// Used by Figure 2 (which measures the server's request-processing
// routines without network I/O), by the agent/client unit tests, and by
// the examples when a real socket adds nothing.
#pragma once

#include "net/message.hpp"

namespace communix::net {

class InprocTransport final : public ClientTransport {
 public:
  explicit InprocTransport(RequestHandler& handler) : handler_(handler) {}

  Result<Response> Call(const Request& request) override;

 private:
  RequestHandler& handler_;
};

}  // namespace communix::net
