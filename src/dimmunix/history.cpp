#include "dimmunix/history.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace communix::dimmunix {

namespace {
constexpr std::uint32_t kHistoryMagic = 0x44494D58;  // "DIMX"
constexpr std::uint32_t kHistoryVersion = 1;
}  // namespace

int History::Add(Signature sig, SignatureOrigin origin, TimePoint now) {
  const std::uint64_t content = sig.ContentId();
  if (by_content_.count(content) > 0) return -1;
  const std::size_t index = records_.size();
  records_.push_back(SignatureRecord{std::move(sig), origin, false, now});
  by_content_.emplace(content, index);
  return static_cast<int>(index);
}

void History::Replace(std::size_t index, Signature sig) {
  const std::uint64_t old_content = records_.at(index).sig.ContentId();
  by_content_.erase(old_content);
  records_[index].sig = std::move(sig);
  const std::uint64_t new_content = records_[index].sig.ContentId();
  by_content_.emplace(new_content, index);
  // A replace that actually changed the content retires the old id (the
  // merged/general signature supersedes it server-side too).
  if (new_content != old_content) {
    retired_content_ids_.push_back(old_content);
  }
}

bool History::Disable(std::uint64_t content_id) {
  auto it = by_content_.find(content_id);
  if (it == by_content_.end()) return false;
  // Only the false→true transition retires: re-disabling an already
  // disabled record must not re-enqueue it every FP hit.
  if (!records_[it->second].disabled) {
    retired_content_ids_.push_back(content_id);
  }
  records_[it->second].disabled = true;
  return true;
}

bool History::ReEnable(std::uint64_t content_id) {
  auto it = by_content_.find(content_id);
  if (it == by_content_.end()) return false;
  records_[it->second].disabled = false;
  return true;
}

std::vector<std::uint64_t> History::TakeRetiredContentIds() {
  std::vector<std::uint64_t> out;
  out.swap(retired_content_ids_);
  return out;
}

std::vector<std::size_t> History::FindByBugKey(std::uint64_t bug_key) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].sig.BugKey() == bug_key) out.push_back(i);
  }
  return out;
}

Status History::SaveToFile(const std::string& path) const {
  BinaryWriter w;
  w.WriteU32(kHistoryMagic);
  w.WriteU32(kHistoryVersion);
  w.WriteU32(static_cast<std::uint32_t>(records_.size()));
  for (const SignatureRecord& rec : records_) {
    w.WriteU8(static_cast<std::uint8_t>(rec.origin));
    w.WriteU8(rec.disabled ? 1 : 0);
    w.WriteI64(rec.added_at);
    rec.sig.Serialize(w);
  }
  // Write via a temp file + rename for crash consistency.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Error(ErrorCode::kUnavailable, "cannot open " + tmp);
    }
    out.write(reinterpret_cast<const char*>(w.data().data()),
              static_cast<std::streamsize>(w.size()));
    if (!out) {
      return Status::Error(ErrorCode::kUnavailable, "short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Error(ErrorCode::kUnavailable,
                         "rename failed: " + ec.message());
  }
  return Status::Ok();
}

Result<History> History::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Error(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  BinaryReader r(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  if (r.ReadU32() != kHistoryMagic || r.ReadU32() != kHistoryVersion) {
    return Status::Error(ErrorCode::kDataLoss, "bad history header: " + path);
  }
  const std::uint32_t count = r.ReadU32();
  History h;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto origin = static_cast<SignatureOrigin>(r.ReadU8());
    const bool disabled = r.ReadU8() != 0;
    const TimePoint added = r.ReadI64();
    auto sig = Signature::Deserialize(r);
    if (!sig || !r.ok()) {
      return Status::Error(ErrorCode::kDataLoss,
                           "corrupt history record in " + path);
    }
    const int idx = h.Add(std::move(*sig), origin, added);
    if (idx >= 0 && disabled) {
      h.records_[static_cast<std::size_t>(idx)].disabled = true;
    }
  }
  return h;
}

}  // namespace communix::dimmunix
