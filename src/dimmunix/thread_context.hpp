// Per-thread shadow call stack and scheduling state.
//
// The paper's Dimmunix obtains call stacks from the JVM at instrumentation
// points. Our C++ substrate keeps an explicit shadow stack per thread,
// maintained by RAII `ScopedFrame` guards that model method entry/exit;
// `SetLine` models the program counter advancing within the top method.
// This yields deterministic, portable stacks with the same matching
// semantics as JVM stack traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dimmunix/frame.hpp"

namespace communix::dimmunix {

class Monitor;
class DimmunixRuntime;

class ThreadContext {
 public:
  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  // ---- shadow stack: called only by the owning thread ----
  void PushFrame(Frame frame) { stack_.push_back(std::move(frame)); }
  void PopFrame() {
    if (!stack_.empty()) stack_.pop_back();
  }
  /// Updates the line of the top frame (execution advanced within the
  /// current method). No-op on an empty stack.
  void SetLine(std::uint32_t line) {
    if (!stack_.empty()) {
      stack_.back().line = line;
      stack_.back().RecomputeKey();
    }
  }
  std::size_t stack_depth() const { return stack_.size(); }

  /// Snapshot of the current stack, truncated to the top `max_depth`
  /// frames.
  CallStack CaptureStack(std::size_t max_depth) const {
    if (stack_.size() <= max_depth) return CallStack(stack_);
    return CallStack(std::vector<Frame>(
        stack_.end() - static_cast<std::ptrdiff_t>(max_depth), stack_.end()));
  }

 private:
  friend class DimmunixRuntime;

  ThreadContext(std::uint64_t id, std::string name)
      : id_(id), name_(std::move(name)) {}

  const std::uint64_t id_;
  const std::string name_;

  std::vector<Frame> stack_;  // owning thread only

  // ---- guarded by DimmunixRuntime::mu_ ----
  Monitor* waiting_for_ = nullptr;  // blocked on this monitor's owner
  CallStack waiting_stack_;         // stack snapshot at block time
  bool in_avoidance_ = false;       // suspended by the avoidance module
  std::vector<ThreadContext*> yield_targets_;  // occupants we yield to
  std::vector<Monitor*> held_;                 // monitors currently owned
  bool detached_ = false;
};

/// RAII method-entry guard: pushes a frame, pops it on scope exit.
class ScopedFrame {
 public:
  ScopedFrame(ThreadContext& ctx, std::string class_name, std::string method,
              std::uint32_t line)
      : ctx_(ctx) {
    ctx_.PushFrame(Frame(std::move(class_name), std::move(method), line));
  }
  ~ScopedFrame() { ctx_.PopFrame(); }

  ScopedFrame(const ScopedFrame&) = delete;
  ScopedFrame& operator=(const ScopedFrame&) = delete;

 private:
  ThreadContext& ctx_;
};

}  // namespace communix::dimmunix
