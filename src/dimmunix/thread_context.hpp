// Per-thread shadow call stack and scheduling state.
//
// The paper's Dimmunix obtains call stacks from the JVM at instrumentation
// points. Our C++ substrate keeps an explicit shadow stack per thread,
// maintained by RAII `ScopedFrame` guards that model method entry/exit;
// `SetLine` models the program counter advancing within the top method.
// This yields deterministic, portable stacks with the same matching
// semantics as JVM stack traces.
//
// Concurrency: fields fall into three guard classes.
//  * `stack_` — owning thread only, never shared.
//  * `held_` (plus the acq_stack_/recursion_ of the monitors in it) —
//    published state the avoidance scanner must see even for fast-path
//    acquisitions. Writes happen under this thread's `state_mu_`; the
//    scanner (which runs under the runtime mutex) takes `state_mu_` per
//    scanned thread. The fast path therefore only ever touches its own
//    cache-local lock, never the runtime-wide mutex.
//  * `waiting_for_`, `waiting_stack_`, `in_avoidance_`, `yield_targets_`,
//    `detached_` — written exclusively under the runtime mutex (these
//    only change on the slow path).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "dimmunix/frame.hpp"
#include "dimmunix/stats.hpp"

namespace communix::dimmunix {

class Monitor;
class DimmunixRuntime;

class ThreadContext {
 public:
  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  // ---- shadow stack: called only by the owning thread ----
  void PushFrame(Frame frame) {
    stack_.push_back(std::move(frame));
    live_frames_.fetch_add(1, std::memory_order_relaxed);
  }
  void PopFrame() {
    if (!stack_.empty()) {
      stack_.pop_back();
      // The release-decrement is the owner's last touch of a popped
      // frame: once the count hits zero after DetachThread, the runtime
      // may reclaim this context (see ReapDetachedLocked).
      live_frames_.fetch_sub(1, std::memory_order_release);
    }
  }
  /// Updates the line of the top frame (execution advanced within the
  /// current method). No-op on an empty stack.
  void SetLine(std::uint32_t line) {
    if (!stack_.empty()) {
      stack_.back().line = line;
      stack_.back().RecomputeKey();
    }
  }
  std::size_t stack_depth() const { return stack_.size(); }

  /// Snapshot of the current stack, truncated to the top `max_depth`
  /// frames.
  CallStack CaptureStack(std::size_t max_depth) const {
    if (stack_.size() <= max_depth) return CallStack(stack_);
    return CallStack(std::vector<Frame>(
        stack_.end() - static_cast<std::ptrdiff_t>(max_depth), stack_.end()));
  }

 private:
  friend class DimmunixRuntime;

  ThreadContext(std::uint64_t id, std::string name)
      : id_(id), name_(std::move(name)) {}

  const std::uint64_t id_;
  const std::string name_;

  std::vector<Frame> stack_;  // owning thread only
  /// Outstanding shadow-stack frames. ScopedFrame guards routinely pop
  /// *after* DetachThread (scope exit order), so the reaper must not free
  /// a tombstoned context until this count has drained to zero.
  std::atomic<std::size_t> live_frames_{0};

  /// Publication lock for `held_`, the pending-acquisition slot, and the
  /// acq_stack_ of owned monitors; see the class comment. Uncontended in
  /// the fast path.
  mutable std::mutex state_mu_;
  std::vector<Monitor*> held_;  // monitors currently owned (state_mu_)
  /// In-flight fast-path acquisition (state_mu_): published *before* the
  /// ownership CAS so avoidance scans never have a blind window between
  /// a fast acquirer claiming a monitor and its held_ entry appearing —
  /// a thread at a lock statement counts as an occupant ("holding or
  /// blocked at") in every global-lock serialization, so advertising the
  /// attempt is exactly equivalent.
  Monitor* pending_acquire_ = nullptr;
  CallStack pending_stack_;

  /// This thread's shard of the runtime statistics; bumped lock-free by
  /// the owning thread, summed by DimmunixRuntime::GetStats, folded into
  /// the runtime's shard when the context is reaped.
  StatCounters counters_;

  /// Park telemetry for the deterministic-schedule test harness: while
  /// `parked_` is true the thread sits in the runtime's version-gated
  /// cv wait, and `park_version_` is the state version it decided to
  /// wait on — if that still equals the current version, the thread
  /// cannot advance until a writer bumps it (quiescently parked).
  std::atomic<bool> parked_{false};
  std::atomic<std::uint64_t> park_version_{0};

  // ---- guarded by DimmunixRuntime::mu_ ----
  Monitor* waiting_for_ = nullptr;  // blocked on this monitor's owner
  CallStack waiting_stack_;         // stack snapshot at block time
  bool in_avoidance_ = false;       // suspended by the avoidance module
  std::vector<ThreadContext*> yield_targets_;  // occupants we yield to
  bool detached_ = false;
};

/// RAII method-entry guard: pushes a frame, pops it on scope exit.
class ScopedFrame {
 public:
  ScopedFrame(ThreadContext& ctx, std::string class_name, std::string method,
              std::uint32_t line)
      : ctx_(ctx) {
    ctx_.PushFrame(Frame(std::move(class_name), std::move(method), line));
  }
  ~ScopedFrame() { ctx_.PopFrame(); }

  ScopedFrame(const ScopedFrame&) = delete;
  ScopedFrame& operator=(const ScopedFrame&) = delete;

 private:
  ThreadContext& ctx_;
};

}  // namespace communix::dimmunix
