// Monitor: the lock abstraction Dimmunix interposes on.
//
// Stands in for a Java object monitor (synchronized block/method). A
// Monitor must only be acquired/released through the owning
// DimmunixRuntime, which is exactly the interposition point the paper
// instruments with AspectJ.
//
// Concurrency protocol (fast-path runtime mode):
//  * `owner_word_` is the atomic ownership word: the owning
//    ThreadContext* with the low `kWaiterBit` flagging that the runtime's
//    wait queue for this monitor is (or is about to be) non-empty. The
//    uncontended fast path claims the word with a CAS 0 -> ctx and
//    releases it with a CAS ctx -> 0; the slow path performs the same
//    transitions while holding the runtime mutex. A release whose CAS
//    fails (waiter bit set) must not store 0 — that would reopen the
//    barging steal window — and instead transfers the word directly to a
//    queued waiter (direct handoff, MCS/futex style). So ownership is
//    granted either by winning the claim CAS or by receiving a handoff;
//    there is no other grant mechanism, and the word never reads 0 while
//    a parked waiter sits in `wait_queue_`.
//  * `recursion_` is owned by the current owner thread only. Ownership
//    hand-over (release-store / CAS-acquire on `owner_word_`) orders the
//    old owner's writes before the new owner's accesses.
//  * `acq_stack_` is written by the owner under its ThreadContext
//    publication lock (`state_mu_`), *before* `owner_word_` is cleared
//    on release. Slow-path scanners read it either (a) under the
//    holder's `state_mu_` while walking that thread's held-set, or (b)
//    under the runtime mutex for monitors whose owner is parked in the
//    runtime's wait loop (parked threads cannot concurrently mutate it).
//  * `wait_queue_` is the FIFO of slow-path acquirers blocked on this
//    monitor, guarded by the runtime mutex. A blocked acquirer enqueues
//    itself when it announces the block and verifies the waiter bit is
//    set before every park; a releasing owner that hits the bit pops the
//    handoff winner (queue head, unless the wake-order test hook picks
//    otherwise) and writes it straight into the word.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "dimmunix/frame.hpp"

namespace communix::dimmunix {

class ThreadContext;
class DimmunixRuntime;

class Monitor {
 public:
  explicit Monitor(std::string name = "")
      : id_(next_id_.fetch_add(1, std::memory_order_relaxed)),
        name_(std::move(name)) {}

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  friend class DimmunixRuntime;

  static std::atomic<std::uint64_t> next_id_;

  /// Low bit of the ownership word: the wait queue is non-empty (or a
  /// waiter has committed to enqueueing), so a release must hand off
  /// instead of storing 0. ThreadContext is at least pointer-aligned, so
  /// the bit never collides with the owner pointer.
  static constexpr std::uintptr_t kWaiterBit = 1;

  static std::uintptr_t Pack(ThreadContext* ctx, bool waiters) {
    return reinterpret_cast<std::uintptr_t>(ctx) |
           (waiters ? kWaiterBit : 0);
  }
  static ThreadContext* UnpackOwner(std::uintptr_t word) {
    return reinterpret_cast<ThreadContext*>(word & ~kWaiterBit);
  }

  const std::uint64_t id_;
  const std::string name_;

  /// Ownership word (owner pointer | kWaiterBit); see the protocol
  /// comment above.
  std::atomic<std::uintptr_t> owner_word_{0};
  /// Current owner, ignoring the waiter bit.
  ThreadContext* owner(std::memory_order order) const {
    return UnpackOwner(owner_word_.load(order));
  }
  /// Slow-path acquirers blocked on this monitor, in arrival (announce)
  /// order. Guarded by the runtime mutex.
  std::vector<ThreadContext*> wait_queue_;
  /// Reentrancy depth; accessed only by the current owner.
  int recursion_ = 0;
  /// Call stack the owner had when it acquired this monitor — the "outer"
  /// stack if this monitor ends up in a deadlock cycle. Guarded by the
  /// owner's ThreadContext::state_mu_.
  CallStack acq_stack_;
  /// Occupancy bucket of acq_stack_'s top-frame key, cached at
  /// acquisition so the release path can decrement the adaptive gate's
  /// occupancy counter without rehashing. Same guard as acq_stack_.
  std::uint32_t acq_bucket_ = 0;
};

}  // namespace communix::dimmunix
