// Monitor: the lock abstraction Dimmunix interposes on.
//
// Stands in for a Java object monitor (synchronized block/method). A
// Monitor must only be acquired/released through the owning
// DimmunixRuntime, which is exactly the interposition point the paper
// instruments with AspectJ.
//
// Concurrency protocol (fast-path runtime mode):
//  * `owner_` is the atomic ownership word. The uncontended fast path
//    claims it with a CAS nullptr -> ctx and releases it with a store
//    back to nullptr; the global-lock slow path performs the same CAS
//    while holding the runtime mutex. Whoever wins the CAS owns the
//    monitor — there is no other grant mechanism.
//  * `recursion_` is owned by the current owner thread only. Ownership
//    hand-over (release-store / CAS-acquire on `owner_`) orders the old
//    owner's writes before the new owner's accesses.
//  * `acq_stack_` is written by the owner under its ThreadContext
//    publication lock (`state_mu_`), *before* `owner_` is cleared on
//    release. Slow-path scanners read it either (a) under the holder's
//    `state_mu_` while walking that thread's held-set, or (b) under the
//    runtime mutex for monitors whose owner is parked in the runtime's
//    wait loop (parked threads cannot concurrently mutate it).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "dimmunix/frame.hpp"

namespace communix::dimmunix {

class ThreadContext;
class DimmunixRuntime;

class Monitor {
 public:
  explicit Monitor(std::string name = "")
      : id_(next_id_.fetch_add(1, std::memory_order_relaxed)),
        name_(std::move(name)) {}

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  friend class DimmunixRuntime;

  static std::atomic<std::uint64_t> next_id_;

  const std::uint64_t id_;
  const std::string name_;

  /// Ownership word; see the protocol comment above.
  std::atomic<ThreadContext*> owner_{nullptr};
  /// Reentrancy depth; accessed only by the current owner.
  int recursion_ = 0;
  /// Call stack the owner had when it acquired this monitor — the "outer"
  /// stack if this monitor ends up in a deadlock cycle. Guarded by the
  /// owner's ThreadContext::state_mu_.
  CallStack acq_stack_;
  /// Occupancy bucket of acq_stack_'s top-frame key, cached at
  /// acquisition so the release path can decrement the adaptive gate's
  /// occupancy counter without rehashing. Same guard as acq_stack_.
  std::uint32_t acq_bucket_ = 0;
};

}  // namespace communix::dimmunix
