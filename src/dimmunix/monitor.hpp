// Monitor: the lock abstraction Dimmunix interposes on.
//
// Stands in for a Java object monitor (synchronized block/method). All
// mutable state is guarded by the owning DimmunixRuntime's lock; a Monitor
// must only be acquired/released through the runtime, which is exactly the
// interposition point the paper instruments with AspectJ.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "dimmunix/frame.hpp"

namespace communix::dimmunix {

class ThreadContext;
class DimmunixRuntime;

class Monitor {
 public:
  explicit Monitor(std::string name = "")
      : id_(next_id_.fetch_add(1, std::memory_order_relaxed)),
        name_(std::move(name)) {}

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  friend class DimmunixRuntime;

  static std::atomic<std::uint64_t> next_id_;

  const std::uint64_t id_;
  const std::string name_;

  // ---- guarded by DimmunixRuntime::mu_ ----
  ThreadContext* owner_ = nullptr;
  int recursion_ = 0;
  /// Call stack the owner had when it acquired this monitor — the "outer"
  /// stack if this monitor ends up in a deadlock cycle.
  CallStack acq_stack_;
};

}  // namespace communix::dimmunix
