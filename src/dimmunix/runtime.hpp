// DimmunixRuntime: deadlock detection, signature extraction, and
// signature-based deadlock avoidance (§II-A).
//
// This is the deadlock-immunity substrate Communix builds on. The runtime
// interposes on every monitor acquisition/release:
//
//  * Avoidance. Before an acquisition, it checks whether granting the
//    lock would complete an *instantiation* of a history signature: for a
//    signature with outer stacks CS1..CSn, there must exist distinct
//    threads t1..tn holding or blocked at distinct locks with current
//    stacks matching CS1..CSn. If the caller would complete such a
//    pattern, it is suspended until the instantiation can no longer
//    complete. Suspensions are reported to the false-positive detector.
//    To never introduce stalls of its own, the runtime refuses to suspend
//    when doing so would close a cycle of yields and lock waits (the
//    yield-cycle override from the Dimmunix design).
//
//  * Detection. When a thread is about to block on a held monitor, the
//    runtime walks the wait-for chain; a cycle back to the caller is a
//    deadlock. The signature (outer stack of each involved lock at its
//    acquisition + inner stacks at the block points) is extracted, added
//    to the persistent history, and the caller's acquisition fails with
//    kDeadlock — modelling the paper's "application deadlocks once, user
//    restarts, and is immune afterwards" without killing the process.
//
// Concurrency: two-tier fast-path/slow-path architecture.
//
//  * Fast path (RuntimeMode::kFastPath, the default). An acquisition
//    whose captured stack's top frame has no candidates in the published
//    AvoidanceIndex — i.e. no enabled signature could possibly gate it —
//    and whose monitor is free claims ownership with a single CAS and
//    publishes its holding under the calling thread's own publication
//    lock, never touching the runtime-wide mutex. Release symmetrically
//    fast-paths when no waiter or suspended avoider could need waking.
//    The index is an immutable snapshot republished (RCU-style, via
//    std::atomic<std::shared_ptr>) by every history writer; readers
//    never lock. Writers publish *delta* rebuilds derived from the
//    previous snapshot (signature entries are shared, not re-copied)
//    with a periodic full rebuild as a safety net. A fast acquisition
//    linearizes at its index load: it behaves exactly like a global-lock
//    acquisition that ran just before any concurrently-learned signature
//    was installed.
//
//    Candidate hits are additionally gated by the *adaptive* scan gate:
//    each published occupancy (held monitor, pending fast-path slot,
//    announced block) counts into a striped per-top-key occupancy table,
//    and a candidate-hit acquisition runs the instantiation scan only if
//    some bucket of a *peer* position of one of its candidate signatures
//    is non-zero. An all-zero read proves the scan would find no
//    occupant set, so skipping it is decision-identical to the
//    always-scan kGlobalLock reference (the schedule-harness equivalence
//    test exercises exactly this claim).
//
//  * Slow path. Candidate hits, contention, reentrancy in global-lock
//    mode, and detection all take the runtime-wide mutex `mu_`, which
//    keeps the instantiation check atomic with the lock grant exactly as
//    in the original centralized design. RuntimeMode::kGlobalLock routes
//    *every* operation through this path — it is the bit-identical
//    legacy behavior, kept as the reference for the fast-vs-global
//    equivalence property test.
//
//    Waits are version-gated: every state change bumps `state_version_`,
//    and sleepers re-check it before parking, so a fast-path release
//    (which cannot hold `mu_` while a waiter decides to sleep) can never
//    cause a lost wakeup — if it observes no sleepers after bumping the
//    version, any concurrent would-be sleeper is guaranteed to observe
//    the bump and re-scan instead of parking.
//
//  * Fair, deterministic wakeup. Monitor handoff is non-barging: a
//    blocked acquirer enqueues itself on the monitor's wait queue and
//    sets the waiter bit in the owner word before every park, and a
//    release that sees the bit transfers ownership directly to a queued
//    waiter (FIFO head unless the wake-order test hook picks otherwise)
//    instead of freeing the word — so a fast-path CAS can never steal a
//    monitor from a parked waiter (Stats::barges_prevented counts the
//    turned-away attempts, Stats::handoffs the direct transfers). Wakeups
//    themselves go through a turnstile: of the parked threads whose
//    observed version is stale, exactly one at a time (lowest thread id,
//    or the hook's pick — both deterministic and mode-independent) is
//    released to re-examine the world, which makes previously racy
//    multi-waiter wake paths (e.g. both sides of a signature suspended
//    concurrently) resolve in a reproducible order the schedule harness
//    can script.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <string>
#include <vector>

#include "dimmunix/avoidance_index.hpp"
#include "dimmunix/fp_detector.hpp"
#include "dimmunix/history.hpp"
#include "dimmunix/monitor.hpp"
#include "dimmunix/signature.hpp"
#include "dimmunix/stats.hpp"
#include "dimmunix/thread_context.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace communix::dimmunix {

/// Which acquisition architecture the runtime uses. kGlobalLock is the
/// pre-fast-path behavior (one runtime mutex around every operation);
/// kFastPath adds the lock-free uncontended path. Both make identical
/// avoidance/detection decisions.
enum class RuntimeMode { kFastPath, kGlobalLock };

class DimmunixRuntime {
 public:
  struct Options {
    bool avoidance_enabled = true;
    bool detection_enabled = true;
    /// Stacks are truncated to this many top frames when captured.
    std::size_t max_stack_depth = 64;
    /// If true, signatures flagged by the FP detector are disabled
    /// immediately (the paper instead warns the user and lets them
    /// decide; tests exercise both policies).
    bool auto_disable_false_positives = false;
    RuntimeMode mode = RuntimeMode::kFastPath;
    /// Adaptive scan gate (kFastPath only): candidate-hit sites whose
    /// candidate signatures have no live occupant in any *other* position
    /// skip the instantiation scan. Provably decision-identical to the
    /// always-scan kGlobalLock reference — the gate only elides scans
    /// that must return empty (see OccupancyTable).
    bool adaptive_avoidance = true;
    /// Run a verification scan every Nth gate skip and count any
    /// disagreement in Stats::adaptive_gate_mismatches (0 disables
    /// sampling). The runtime fails safe on mismatch: it honors the scan
    /// result, so even a broken gate cannot admit past the reference.
    std::uint32_t adaptive_verify_sample = 64;
    /// Occupancy-table width (power of two, clamped to
    /// [OccupancyTable::kMinBuckets, kMaxBuckets]). Collisions between
    /// index keys cost lost gate skips (Stats::occupancy_key_collisions
    /// counts them), so busy deployments want ~8 buckets per candidate
    /// key. 0 = auto: start at the default width and, at each index
    /// build that happens before any thread has attached (the
    /// install-persisted-history-at-startup pattern), grow to
    /// OccupancyTable::RecommendedBuckets(candidate-key count). Once a
    /// thread is attached the width is frozen — live occupancies cache
    /// their bucket index, so resizing under them would corrupt the
    /// zero-read proof.
    std::size_t occupancy_buckets = 0;
    /// Republish the avoidance index by delta rebuild (reusing the
    /// previous snapshot's entries) instead of a full copy.
    bool delta_index_rebuilds = true;
    /// Interleave a from-scratch full rebuild every Nth republish as a
    /// safety net for long delta chains (0 = always full).
    std::uint32_t full_rebuild_period = 64;
    FpDetector::Options fp;
  };

  explicit DimmunixRuntime(Clock& clock) : DimmunixRuntime(clock, Options{}) {}
  DimmunixRuntime(Clock& clock, Options options);
  ~DimmunixRuntime();

  DimmunixRuntime(const DimmunixRuntime&) = delete;
  DimmunixRuntime& operator=(const DimmunixRuntime&) = delete;

  // ---- thread lifecycle -------------------------------------------------
  /// Registers the calling thread; the returned context stays valid until
  /// DetachThread. A thread must not hold monitors when detaching.
  ThreadContext& AttachThread(std::string name);
  void DetachThread(ThreadContext& ctx);

  // ---- instrumented synchronization --------------------------------------
  /// Acquires `m` for `ctx` (reentrant). Returns kDeadlock if this
  /// acquisition would close a deadlock cycle: the signature has been
  /// recorded and the caller must unwind (release its monitors).
  Status Acquire(ThreadContext& ctx, Monitor& m);
  void Release(ThreadContext& ctx, Monitor& m);

  // ---- history management (plugin/agent side) ----------------------------
  /// Adds a signature (e.g. a validated remote one). Returns history
  /// index or -1 if duplicate.
  int AddSignature(Signature sig, SignatureOrigin origin);
  /// Replaces signature at `index` with its generalization.
  void ReplaceSignature(std::size_t index, Signature sig);
  /// Copies the history (for inspection/persistence without racing the
  /// workload).
  History SnapshotHistory() const;
  /// Monotonic counter bumped by every history mutation. Lock-free read;
  /// pollers compare it against their last-seen value to skip the deep
  /// copy entirely when nothing changed.
  std::uint64_t HistoryVersion() const {
    return history_version_.load(std::memory_order_acquire);
  }
  /// Copies the history only if its version differs from `*last_seen`
  /// (nullopt otherwise, without taking the runtime lock). On copy,
  /// `*last_seen` is updated to the version the copy reflects.
  std::optional<History> SnapshotHistoryIfChanged(
      std::uint64_t* last_seen) const;
  /// Runs `fn` with exclusive access to the history, then republishes
  /// the avoidance index — the single mutation entry point writers like
  /// the Communix agent batch their installs through.
  void WithHistory(const std::function<void(History&)>& fn);
  /// Drains the history's retired-content ledger (content ids whose
  /// entries were replaced by generalization or auto-disabled as false
  /// positives since the last drain) — what the plugin batches into one
  /// kMarkSuperseded frame per sync. See History::TakeRetiredContentIds.
  std::vector<std::uint64_t> DrainRetiredContentIds();

  // ---- hooks --------------------------------------------------------------
  using SignatureCallback = std::function<void(const Signature&)>;
  /// Invoked (outside the runtime lock) when detection produces a *new*
  /// signature — the Communix plugin's upload hook.
  void SetNewSignatureCallback(SignatureCallback cb);
  /// Invoked when the FP detector flags a signature (§III-C1 warning).
  void SetFalsePositiveCallback(SignatureCallback cb);

  // ---- introspection --------------------------------------------------
  /// Aggregated snapshot of the per-thread + runtime counter shards (see
  /// stats.hpp). Kept as a nested alias so call sites read
  /// DimmunixRuntime::Stats as before the sharding.
  using Stats = RuntimeStats;
  Stats GetStats() const;
  /// Registers a snapshot-time probe on `registry` that emits every
  /// GetStats() field under `<prefix>.` (counters; the occupancy fields
  /// as gauges) — the runtime tier's rows of the unified kStats
  /// snapshot. Release (or drop) the handle before destroying the
  /// runtime.
  [[nodiscard]] obs::ProbeHandle ExportStats(
      obs::MetricsRegistry& registry, std::string prefix = "dimmunix") const;
  /// Number of thread-context records currently retained (live +
  /// not-yet-reaped tombstones) — introspection for the reap tests.
  std::size_t ThreadRecordCount() const;
  Clock& clock() { return clock_; }
  const Options& options() const { return options_; }

  // ---- deterministic-schedule test-harness support ----------------------
  /// Current state version (lock-free). A thread parked at this version
  /// cannot advance until a writer bumps it.
  std::uint64_t StateVersionForTest() const {
    return state_version_.load(std::memory_order_seq_cst);
  }
  /// True iff `ctx` sits in the runtime's version-gated wait with no
  /// pending state change — i.e. it is stably blocked and will not move
  /// until another thread acts. Used by the schedule harness to decide
  /// that a dispatched operation has settled as "blocked".
  bool IsQuiescentlyParkedForTest(const ThreadContext& ctx) const {
    return ctx.parked_.load(std::memory_order_acquire) &&
           ctx.park_version_.load(std::memory_order_acquire) ==
               state_version_.load(std::memory_order_seq_cst);
  }
  /// Wakeup-ordering hook. Given the candidate set — for a handoff, the
  /// monitor's wait queue in FIFO arrival order; for the wake turnstile,
  /// the stale-parked threads in ascending thread-id order — returns the
  /// index of the candidate that should win (out-of-range clamps to the
  /// last). Installed by the schedule harness so scripted interleavings
  /// control which waiter wins; without a hook the defaults (FIFO head /
  /// lowest id) are themselves deterministic and mode-independent.
  using WakeOrderHook =
      std::function<std::size_t(const std::vector<const ThreadContext*>&)>;
  void SetWakeOrderHookForTest(WakeOrderHook hook);

 private:
  struct Occupant {
    ThreadContext* thread;
    const Monitor* lock;
  };

  /// Candidate-free + uncontended-CAS attempt; true iff the acquisition
  /// completed without the runtime lock.
  bool TryFastAcquire(ThreadContext& ctx, Monitor& m, const CallStack& stack);
  Status AcquireSlow(ThreadContext& ctx, Monitor& m, const CallStack& stack);
  void ReleaseSlow(ThreadContext& ctx, Monitor& m);

  /// If granting (ctx, m, stack) completes an instantiation of an enabled
  /// signature in `index`, returns the other occupants (and the matched
  /// signature's content id via `matched`); otherwise empty. Caller holds
  /// mu_; the per-thread held-sets are sampled under their publication
  /// locks so fast-path holdings are visible.
  std::vector<ThreadContext*> FindImminentInstantiation(
      const ThreadContext& ctx, const Monitor& m, const CallStack& stack,
      const AvoidanceIndex& index, std::uint64_t* matched_content_id) const;

  /// True iff suspending `ctx` yielding to `occupants` would close a
  /// cycle of yield + lock-wait edges.
  bool WouldCloseYieldCycle(const ThreadContext& ctx,
                            const std::vector<ThreadContext*>& occupants) const;

  /// Walks the wait-for chain from `m`'s owner; returns the cycle as
  /// (thread, monitor-it-waits-for) pairs if it reaches `ctx`.
  struct CycleNode {
    ThreadContext* thread;
    Monitor* waits_for;
  };
  std::vector<CycleNode> FindLockCycle(const ThreadContext& ctx,
                                       const Monitor& m) const;

  Signature ExtractSignature(ThreadContext& ctx, Monitor& m,
                             const CallStack& inner_of_ctx,
                             const std::vector<CycleNode>& chain) const;

  /// Republishes the avoidance index after a history mutation and bumps
  /// the history version. Must be called under mu_. Publishes a delta
  /// rebuild derived from the previous snapshot (entries reused, key
  /// stats carried over) except every `full_rebuild_period`-th call,
  /// which runs the from-scratch full build as a safety net.
  void RepublishIndexLocked();

  /// True iff the adaptive scan gate applies (fast-path mode only; the
  /// kGlobalLock reference always scans).
  bool AdaptiveGateEnabled() const {
    return options_.mode == RuntimeMode::kFastPath &&
           options_.adaptive_avoidance;
  }

  /// Grants `m` to `ctx`: records recursion/acq stack/held entry under
  /// ctx's publication lock. Ownership of `m` must already be claimed.
  void PublishAcquisition(ThreadContext& ctx, Monitor& m,
                          const CallStack& stack);
  /// Reverse of PublishAcquisition; runs before ownership is cleared.
  void UnpublishAcquisition(ThreadContext& ctx, Monitor& m);

  /// Frees tombstoned contexts no live thread's yield_targets_ reference.
  void ReapDetachedLocked();

  Clock& clock_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Threads currently blocked in (or committing to) cv_.wait. Atomic so
  /// the fast-path release can test it without mu_.
  std::atomic<std::size_t> sleepers_{0};
  /// Bumped on every state change a sleeper might be waiting for; the
  /// version-gated wait protocol above makes fast-path releases safe.
  std::atomic<std::uint64_t> state_version_{0};

  /// Bumps the state version and wakes sleepers. Caller holds mu_.
  void NotifyStateChangedLocked() {
    state_version_.fetch_add(1);
    if (sleepers_.load() > 0) cv_.notify_all();
  }
  /// Parks `ctx` until the state version moves past `observed` *and* the
  /// wake turnstile releases it (see IsWakeTurnLocked). Caller holds mu_
  /// and must have loaded `observed` *before* examining the state it
  /// decided to wait on. Publishes the park through the context's
  /// parked_/park_version_ pair for the schedule harness.
  void WaitForStateChange(ThreadContext& ctx,
                          std::unique_lock<std::mutex>& lock,
                          std::uint64_t observed);
  /// True iff `ctx` holds the wake turn: among the parked threads whose
  /// observed version is stale, it is the lowest-id one (or the
  /// wake-order hook's pick). Exactly one stale sleeper at a time passes
  /// this, so wake chains resolve in a deterministic order instead of
  /// racing on the condition variable. Caller holds mu_.
  bool IsWakeTurnLocked(const ThreadContext& ctx) const;
  /// Transfers `m`'s ownership word to a queued waiter (FIFO head or the
  /// wake-order hook's pick), or stores 0 if the queue is empty. Runs on
  /// `ctx`'s (the releasing owner's) release path under mu_.
  void HandoffLocked(ThreadContext& ctx, Monitor& m);

  /// Threads currently parked in WaitForStateChange (membership set for
  /// the turnstile; the turn order is by thread id, not list position).
  /// Guarded by mu_.
  std::vector<ThreadContext*> parked_order_;
  /// See SetWakeOrderHookForTest. Guarded by mu_.
  WakeOrderHook wake_order_hook_;

  std::vector<std::unique_ptr<ThreadContext>> threads_;  // guarded by mu_
  std::uint64_t next_thread_id_ = 1;

  History history_;        // guarded by mu_
  FpDetector fp_detector_; // guarded by mu_
  /// Runtime-owned counter shard for events with no acquiring thread
  /// (republishes, injected signatures, reaping) plus the folded shards
  /// of reaped contexts. Per-acquisition counting lives in each
  /// ThreadContext's shard; GetStats sums all of them.
  StatCounters global_counters_;

  /// Live occupancy per top-frame-key bucket, feeding the adaptive scan
  /// gate. Maintained for every published occupancy (held monitors,
  /// fast-path pending slots, slow-path block announcements) whenever
  /// avoidance is enabled; index-independent, so signatures learned
  /// later still see occupants that acquired earlier.
  OccupancyTable occupancy_;

  /// Immutable snapshot the lock-free read side consults.
  std::atomic<std::shared_ptr<const AvoidanceIndex>> index_;
  /// The same snapshot, readable under mu_ without the atomic round-trip
  /// (slow path + republish).
  std::shared_ptr<const AvoidanceIndex> index_locked_;  // guarded by mu_
  std::atomic<std::uint64_t> history_version_{0};
  /// Republishes since the last full rebuild (guarded by mu_).
  std::uint32_t republishes_since_full_ = 0;

  SignatureCallback new_signature_cb_;   // guarded by mu_ (invoked unlocked)
  SignatureCallback false_positive_cb_;  // guarded by mu_ (invoked unlocked)
};

/// RAII synchronized block: acquires in the constructor, releases in the
/// destructor. Mirrors `synchronized (m) { ... }` — the `line` is the
/// monitorenter's source line, recorded as the lock statement.
class SyncRegion {
 public:
  SyncRegion(DimmunixRuntime& rt, ThreadContext& ctx, Monitor& m,
             std::uint32_t line = 0)
      : rt_(rt), ctx_(ctx), m_(m) {
    if (line != 0) ctx_.SetLine(line);
    status_ = rt_.Acquire(ctx_, m_);
  }
  ~SyncRegion() {
    if (status_.ok()) rt_.Release(ctx_, m_);
  }

  SyncRegion(const SyncRegion&) = delete;
  SyncRegion& operator=(const SyncRegion&) = delete;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  DimmunixRuntime& rt_;
  ThreadContext& ctx_;
  Monitor& m_;
  Status status_;
};

}  // namespace communix::dimmunix
