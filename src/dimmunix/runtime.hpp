// DimmunixRuntime: deadlock detection, signature extraction, and
// signature-based deadlock avoidance (§II-A).
//
// This is the deadlock-immunity substrate Communix builds on. The runtime
// interposes on every monitor acquisition/release:
//
//  * Avoidance. Before an acquisition, it checks whether granting the
//    lock would complete an *instantiation* of a history signature: for a
//    signature with outer stacks CS1..CSn, there must exist distinct
//    threads t1..tn holding or blocked at distinct locks with current
//    stacks matching CS1..CSn. If the caller would complete such a
//    pattern, it is suspended until the instantiation can no longer
//    complete. Suspensions are reported to the false-positive detector.
//    To never introduce stalls of its own, the runtime refuses to suspend
//    when doing so would close a cycle of yields and lock waits (the
//    yield-cycle override from the Dimmunix design).
//
//  * Detection. When a thread is about to block on a held monitor, the
//    runtime walks the wait-for chain; a cycle back to the caller is a
//    deadlock. The signature (outer stack of each involved lock at its
//    acquisition + inner stacks at the block points) is extracted, added
//    to the persistent history, and the caller's acquisition fails with
//    kDeadlock — modelling the paper's "application deadlocks once, user
//    restarts, and is immune afterwards" without killing the process.
//
// Concurrency: one runtime-wide mutex guards all monitor/thread state.
// This mirrors the centralized avoidance decision of the original system
// and keeps the instantiation check atomic with the lock grant.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <vector>

#include "dimmunix/fp_detector.hpp"
#include "dimmunix/history.hpp"
#include "dimmunix/monitor.hpp"
#include "dimmunix/signature.hpp"
#include "dimmunix/thread_context.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace communix::dimmunix {

class DimmunixRuntime {
 public:
  struct Options {
    bool avoidance_enabled = true;
    bool detection_enabled = true;
    /// Stacks are truncated to this many top frames when captured.
    std::size_t max_stack_depth = 64;
    /// If true, signatures flagged by the FP detector are disabled
    /// immediately (the paper instead warns the user and lets them
    /// decide; tests exercise both policies).
    bool auto_disable_false_positives = false;
    FpDetector::Options fp;
  };

  explicit DimmunixRuntime(Clock& clock) : DimmunixRuntime(clock, Options{}) {}
  DimmunixRuntime(Clock& clock, Options options);
  ~DimmunixRuntime();

  DimmunixRuntime(const DimmunixRuntime&) = delete;
  DimmunixRuntime& operator=(const DimmunixRuntime&) = delete;

  // ---- thread lifecycle -------------------------------------------------
  /// Registers the calling thread; the returned context stays valid until
  /// DetachThread. A thread must not hold monitors when detaching.
  ThreadContext& AttachThread(std::string name);
  void DetachThread(ThreadContext& ctx);

  // ---- instrumented synchronization --------------------------------------
  /// Acquires `m` for `ctx` (reentrant). Returns kDeadlock if this
  /// acquisition would close a deadlock cycle: the signature has been
  /// recorded and the caller must unwind (release its monitors).
  Status Acquire(ThreadContext& ctx, Monitor& m);
  void Release(ThreadContext& ctx, Monitor& m);

  // ---- history management (plugin/agent side) ----------------------------
  /// Adds a signature (e.g. a validated remote one). Returns history
  /// index or -1 if duplicate.
  int AddSignature(Signature sig, SignatureOrigin origin);
  /// Replaces signature at `index` with its generalization.
  void ReplaceSignature(std::size_t index, Signature sig);
  /// Copies the history (for inspection/persistence without racing the
  /// workload).
  History SnapshotHistory() const;
  /// Runs `fn` with exclusive access to the history.
  void WithHistory(const std::function<void(History&)>& fn);

  // ---- hooks --------------------------------------------------------------
  using SignatureCallback = std::function<void(const Signature&)>;
  /// Invoked (outside the runtime lock) when detection produces a *new*
  /// signature — the Communix plugin's upload hook.
  void SetNewSignatureCallback(SignatureCallback cb);
  /// Invoked when the FP detector flags a signature (§III-C1 warning).
  void SetFalsePositiveCallback(SignatureCallback cb);

  // ---- introspection --------------------------------------------------
  struct Stats {
    std::uint64_t acquisitions = 0;
    std::uint64_t contended_acquisitions = 0;
    std::uint64_t avoidance_suspensions = 0;
    std::uint64_t yield_cycle_overrides = 0;
    std::uint64_t deadlocks_detected = 0;
    std::uint64_t signatures_learned = 0;
    /// Detections that generalized an existing local signature (§III-D
    /// merge rule 1) instead of adding a new history entry.
    std::uint64_t local_generalizations = 0;
    std::uint64_t false_positives_flagged = 0;
  };
  Stats GetStats() const;
  Clock& clock() { return clock_; }
  const Options& options() const { return options_; }

 private:
  struct Occupant {
    ThreadContext* thread;
    const Monitor* lock;
  };

  /// If granting (ctx, m, stack) completes an instantiation of an enabled
  /// history signature, returns the other occupants (and the matched
  /// signature's content id via `matched`); otherwise empty.
  std::vector<ThreadContext*> FindImminentInstantiation(
      const ThreadContext& ctx, const Monitor& m, const CallStack& stack,
      std::uint64_t* matched_content_id) const;

  /// True iff suspending `ctx` yielding to `occupants` would close a
  /// cycle of yield + lock-wait edges.
  bool WouldCloseYieldCycle(const ThreadContext& ctx,
                            const std::vector<ThreadContext*>& occupants) const;

  /// Walks the wait-for chain from `m`'s owner; returns the cycle as
  /// (thread, monitor-it-waits-for) pairs if it reaches `ctx`.
  struct CycleNode {
    ThreadContext* thread;
    Monitor* waits_for;
  };
  std::vector<CycleNode> FindLockCycle(const ThreadContext& ctx,
                                       const Monitor& m) const;

  Signature ExtractSignature(ThreadContext& ctx, Monitor& m,
                             const CallStack& inner_of_ctx,
                             const std::vector<CycleNode>& chain) const;

  Clock& clock_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Threads currently blocked in cv_.wait (guarded by mu_). Broadcasts
  /// are skipped when nobody sleeps — on the uncontended fast path the
  /// acquire/release pair then costs one mutex round-trip, no syscalls.
  std::size_t sleepers_ = 0;

  void NotifyStateChanged() {
    if (sleepers_ > 0) cv_.notify_all();
  }
  void WaitForStateChange(std::unique_lock<std::mutex>& lock) {
    ++sleepers_;
    cv_.wait(lock);
    --sleepers_;
  }

  std::vector<std::unique_ptr<ThreadContext>> threads_;  // guarded by mu_
  std::uint64_t next_thread_id_ = 1;

  History history_;        // guarded by mu_
  FpDetector fp_detector_; // guarded by mu_
  Stats stats_;            // guarded by mu_

  SignatureCallback new_signature_cb_;   // guarded by mu_ (invoked unlocked)
  SignatureCallback false_positive_cb_;  // guarded by mu_ (invoked unlocked)
};

/// RAII synchronized block: acquires in the constructor, releases in the
/// destructor. Mirrors `synchronized (m) { ... }` — the `line` is the
/// monitorenter's source line, recorded as the lock statement.
class SyncRegion {
 public:
  SyncRegion(DimmunixRuntime& rt, ThreadContext& ctx, Monitor& m,
             std::uint32_t line = 0)
      : rt_(rt), ctx_(ctx), m_(m) {
    if (line != 0) ctx_.SetLine(line);
    status_ = rt_.Acquire(ctx_, m_);
  }
  ~SyncRegion() {
    if (status_.ok()) rt_.Release(ctx_, m_);
  }

  SyncRegion(const SyncRegion&) = delete;
  SyncRegion& operator=(const SyncRegion&) = delete;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  DimmunixRuntime& rt_;
  ThreadContext& ctx_;
  Monitor& m_;
  Status status_;
};

}  // namespace communix::dimmunix
