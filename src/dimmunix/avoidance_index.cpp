#include "dimmunix/avoidance_index.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/fnv.hpp"

namespace communix::dimmunix {

std::size_t OccupancyTable::ClampBuckets(std::size_t buckets) {
  std::size_t width = kMinBuckets;
  while (width < buckets && width < kMaxBuckets) width <<= 1;
  return width;
}

std::size_t OccupancyTable::RecommendedBuckets(std::size_t candidate_keys) {
  const std::size_t want =
      std::max(kDefaultBuckets, candidate_keys * 8);
  return ClampBuckets(want);
}

OccupancyTable::OccupancyTable(std::size_t buckets)
    : bucket_count_(ClampBuckets(buckets)),
      counts_(new std::atomic<std::uint32_t>[bucket_count_]()) {}

void OccupancyTable::Resize(std::size_t buckets) {
  bucket_count_ = ClampBuckets(buckets);
  counts_.reset(new std::atomic<std::uint32_t>[bucket_count_]());
}

std::size_t CountCandidateKeys(const History& history) {
  std::unordered_set<std::uint64_t> keys;
  for (const SignatureRecord& rec : history.records()) {
    if (rec.disabled) continue;
    for (const SignatureEntry& e : rec.sig.entries()) {
      keys.insert(e.outer.TopKey());
    }
  }
  return keys.size();
}

std::shared_ptr<const AvoidanceIndex> AvoidanceIndex::Build(
    const History& history, std::uint64_t version,
    std::size_t occupancy_buckets) {
  return BuildInternal(history, version, nullptr, occupancy_buckets);
}

std::shared_ptr<const AvoidanceIndex> AvoidanceIndex::Rebuild(
    const AvoidanceIndex& prev, const History& history,
    std::uint64_t version, std::size_t occupancy_buckets) {
  return BuildInternal(history, version, &prev, occupancy_buckets);
}

std::shared_ptr<const AvoidanceIndex> AvoidanceIndex::BuildInternal(
    const History& history, std::uint64_t version,
    const AvoidanceIndex* prev, std::size_t occupancy_buckets) {
  auto index = std::shared_ptr<AvoidanceIndex>(new AvoidanceIndex());
  index->version_ = version;
  index->built_by_delta_ = prev != nullptr;
  index->entries_.reserve(history.size());

  // Reuse map: content id -> previous snapshot's immutable entry.
  std::unordered_map<std::uint64_t, std::shared_ptr<const Entry>> reusable;
  if (prev != nullptr) {
    reusable.reserve(prev->entries_.size());
    for (const auto& e : prev->entries_) reusable.emplace(e->content_id, e);
  }

  for (const SignatureRecord& rec : history.records()) {
    if (rec.disabled) continue;
    const auto ordinal = static_cast<std::uint32_t>(index->entries_.size());
    std::shared_ptr<const Entry> entry;
    if (prev != nullptr) {
      auto it = reusable.find(rec.sig.ContentId());
      if (it != reusable.end()) {
        entry = it->second;
        ++index->entries_reused_;
      }
    }
    if (entry == nullptr) {
      entry = std::make_shared<const Entry>(
          Entry{rec.sig, rec.sig.ContentId()});
      ++index->entries_copied_;
    }
    const auto& entries = entry->sig.entries();
    for (std::size_t pos = 0; pos < entries.size(); ++pos) {
      KeySlot& slot = index->by_outer_top_[entries[pos].outer.TopKey()];
      slot.candidates.push_back(
          Candidate{ordinal, static_cast<std::uint32_t>(pos)});
    }
    index->entries_.push_back(std::move(entry));
  }

  // Per-key adaptive state: peer buckets + fingerprint, then stats
  // carry-over from `prev` where the candidate content is unchanged.
  for (auto& [key, slot] : index->by_outer_top_) {
    std::uint64_t fp = kFnvOffsetBasis;
    for (const Candidate& cand : slot.candidates) {
      const Entry& e = *index->entries_[cand.ordinal];
      fp = HashCombine(fp, e.content_id);
      fp = HashCombine(fp, cand.position);
      const auto& sig_entries = e.sig.entries();
      for (std::size_t j = 0; j < sig_entries.size(); ++j) {
        if (j == cand.position) continue;
        slot.peer_buckets.push_back(OccupancyTable::BucketOf(
            sig_entries[j].outer.TopKey(), occupancy_buckets));
      }
    }
    std::sort(slot.peer_buckets.begin(), slot.peer_buckets.end());
    slot.peer_buckets.erase(
        std::unique(slot.peer_buckets.begin(), slot.peer_buckets.end()),
        slot.peer_buckets.end());
    slot.fingerprint = fp;
    if (prev != nullptr) {
      const KeySlot* old = prev->SlotForTopFrame(key);
      if (old != nullptr && old->fingerprint == fp) slot.stats = old->stats;
    }
    if (slot.stats == nullptr) slot.stats = std::make_shared<KeyStats>();
  }

  // Collision gauge: distinct index keys sharing an occupancy bucket at
  // this width. Each pair costs lost skips whenever one key is occupied
  // while the other's gate evaluates.
  std::unordered_map<std::uint32_t, std::size_t> keys_per_bucket;
  for (const auto& [key, slot] : index->by_outer_top_) {
    ++keys_per_bucket[OccupancyTable::BucketOf(key, occupancy_buckets)];
  }
  for (const auto& [bucket, n] : keys_per_bucket) {
    index->key_bucket_collisions_ += n - 1;
  }
  return index;
}

}  // namespace communix::dimmunix
