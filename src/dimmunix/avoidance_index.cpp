#include "dimmunix/avoidance_index.hpp"

namespace communix::dimmunix {

std::shared_ptr<const AvoidanceIndex> AvoidanceIndex::Build(
    const History& history, std::uint64_t version) {
  auto index = std::shared_ptr<AvoidanceIndex>(new AvoidanceIndex());
  index->version_ = version;
  index->entries_.reserve(history.size());
  for (const SignatureRecord& rec : history.records()) {
    if (rec.disabled) continue;
    const auto ordinal = static_cast<std::uint32_t>(index->entries_.size());
    const auto& entries = rec.sig.entries();
    for (std::size_t pos = 0; pos < entries.size(); ++pos) {
      index->by_outer_top_[entries[pos].outer.TopKey()].push_back(
          Candidate{ordinal, static_cast<std::uint32_t>(pos)});
    }
    index->entries_.push_back(Entry{rec.sig, rec.sig.ContentId()});
  }
  return index;
}

}  // namespace communix::dimmunix
