// Call-stack frames and call stacks.
//
// A deadlock signature is built from call stacks whose frames are
// `class.method : line [: class-bytecode-hash]` entries (§III-C3). Frames
// compare by *location* (class, method, line); the bytecode hash is
// metadata attached by the Communix plugin and consumed by validation.
//
// Convention: index 0 is the outermost (bottom) frame; back() is the top
// frame — for an "outer" stack that is the lock statement itself. A
// signature stack is an *abstraction*: it matches a concrete runtime stack
// iff it equals that stack's top portion ("suffix" in the paper's frame
// numbering, where frame n is the top).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/fnv.hpp"
#include "util/sha256.hpp"

namespace communix::dimmunix {

/// One stack frame. `location_key` is precomputed for O(1) comparison and
/// hash-table lookup.
struct Frame {
  std::string class_name;
  std::string method;
  std::uint32_t line = 0;
  /// SHA-256 of the bytecode of `class_name`, attached by the plugin
  /// before upload (§III-C); absent for stacks captured locally.
  std::optional<Sha256Digest> class_hash;
  std::uint64_t location_key = 0;

  Frame() = default;
  Frame(std::string cls, std::string mth, std::uint32_t ln,
        std::optional<Sha256Digest> hash = std::nullopt)
      : class_name(std::move(cls)),
        method(std::move(mth)),
        line(ln),
        class_hash(std::move(hash)) {
    RecomputeKey();
  }

  void RecomputeKey() {
    std::uint64_t h = Fnv1a(class_name);
    h = Fnv1a(method, h);
    location_key = Fnv1aU64(line, h);
  }

  /// Location equality: class, method, line. Hashes are metadata.
  friend bool operator==(const Frame& a, const Frame& b) {
    return a.location_key == b.location_key && a.line == b.line &&
           a.class_name == b.class_name && a.method == b.method;
  }

  std::string ToString() const {
    return class_name + "." + method + ":" + std::to_string(line);
  }
};

/// A call stack (bottom at index 0, top at back()).
class CallStack {
 public:
  CallStack() = default;
  explicit CallStack(std::vector<Frame> frames) : frames_(std::move(frames)) {}

  bool empty() const { return frames_.empty(); }
  std::size_t depth() const { return frames_.size(); }
  const std::vector<Frame>& frames() const { return frames_; }
  std::vector<Frame>& mutable_frames() { return frames_; }
  const Frame& top() const { return frames_.back(); }

  /// Key of the top frame (the lock statement for outer stacks).
  std::uint64_t TopKey() const {
    return frames_.empty() ? 0 : frames_.back().location_key;
  }

  /// Order-dependent key of the whole stack.
  std::uint64_t StackKey() const {
    std::uint64_t h = kFnvOffsetBasis;
    for (const Frame& f : frames_) h = HashCombine(h, f.location_key);
    return h;
  }

  /// True iff this (abstract) stack equals the top portion of `concrete`.
  bool MatchesSuffixOf(const CallStack& concrete) const {
    if (frames_.empty() || frames_.size() > concrete.frames_.size()) {
      return false;
    }
    const std::size_t offset = concrete.frames_.size() - frames_.size();
    for (std::size_t i = 0; i < frames_.size(); ++i) {
      if (!(frames_[i] == concrete.frames_[offset + i])) return false;
    }
    return true;
  }

  /// Keeps only the top `depth` frames (no-op if already shallower).
  void TrimToDepth(std::size_t depth) {
    if (frames_.size() > depth) {
      frames_.erase(frames_.begin(),
                    frames_.end() - static_cast<std::ptrdiff_t>(depth));
    }
  }

  /// Longest common *top* portion of two stacks (the paper's "longest
  /// common suffix", §III-D). Frames compare by location; hash metadata is
  /// taken from `a`.
  static CallStack LongestCommonSuffix(const CallStack& a, const CallStack& b);

  friend bool operator==(const CallStack& x, const CallStack& y) {
    return x.frames_ == y.frames_;
  }

  std::string ToString() const;

 private:
  std::vector<Frame> frames_;
};

}  // namespace communix::dimmunix
