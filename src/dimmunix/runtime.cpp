#include "dimmunix/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "util/logging.hpp"

namespace communix::dimmunix {

std::atomic<std::uint64_t> Monitor::next_id_{1};

DimmunixRuntime::DimmunixRuntime(Clock& clock, Options options)
    : clock_(clock), options_(options), fp_detector_(options.fp) {}

DimmunixRuntime::~DimmunixRuntime() = default;

ThreadContext& DimmunixRuntime::AttachThread(std::string name) {
  std::lock_guard lock(mu_);
  threads_.push_back(std::unique_ptr<ThreadContext>(
      new ThreadContext(next_thread_id_++, std::move(name))));
  return *threads_.back();
}

void DimmunixRuntime::DetachThread(ThreadContext& ctx) {
  std::lock_guard lock(mu_);
  assert(ctx.held_.empty() && "detaching thread still holds monitors");
  assert(ctx.waiting_for_ == nullptr);
  (void)ctx;  // asserts compile out under NDEBUG
  // Tombstone rather than erase: other threads' yield_targets_ may still
  // reference this context until their next recheck.
  ctx.detached_ = true;
}

std::vector<ThreadContext*> DimmunixRuntime::FindImminentInstantiation(
    const ThreadContext& ctx, const Monitor& m, const CallStack& stack,
    std::uint64_t* matched_content_id) const {
  const auto* cands = history_.CandidatesForTopFrame(stack.TopKey());
  if (cands == nullptr) return {};

  for (const auto& [sig_idx, pos] : *cands) {
    const SignatureRecord& rec = history_.record(sig_idx);
    if (rec.disabled) continue;
    const auto& entries = rec.sig.entries();
    const std::size_t n = entries.size();
    if (n < 2) continue;
    if (!entries[pos].outer.MatchesSuffixOf(stack)) continue;

    // Candidate occupants for every other position.
    std::vector<std::vector<Occupant>> options(n);
    bool feasible = true;
    for (std::size_t j = 0; j < n && feasible; ++j) {
      if (j == pos) continue;
      for (const auto& uptr : threads_) {
        ThreadContext* u = uptr.get();
        if (u == &ctx || u->detached_) continue;
        for (Monitor* h : u->held_) {
          if (h == &m) continue;
          if (entries[j].outer.MatchesSuffixOf(h->acq_stack_)) {
            options[j].push_back(Occupant{u, h});
          }
        }
        if (u->waiting_for_ != nullptr && u->waiting_for_ != &m &&
            entries[j].outer.MatchesSuffixOf(u->waiting_stack_)) {
          options[j].push_back(Occupant{u, u->waiting_for_});
        }
      }
      if (options[j].empty()) feasible = false;
    }
    if (!feasible) continue;

    // Injective assignment: distinct threads on pairwise-distinct locks.
    std::vector<std::size_t> fill;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != pos) fill.push_back(j);
    }
    std::vector<ThreadContext*> chosen_threads;
    std::vector<const Monitor*> chosen_locks = {&m};

    auto assign = [&](auto&& self, std::size_t k) -> bool {
      if (k == fill.size()) return true;
      for (const Occupant& o : options[fill[k]]) {
        if (std::find(chosen_threads.begin(), chosen_threads.end(),
                      o.thread) != chosen_threads.end()) {
          continue;
        }
        if (std::find(chosen_locks.begin(), chosen_locks.end(), o.lock) !=
            chosen_locks.end()) {
          continue;
        }
        chosen_threads.push_back(o.thread);
        chosen_locks.push_back(o.lock);
        if (self(self, k + 1)) return true;
        chosen_threads.pop_back();
        chosen_locks.pop_back();
      }
      return false;
    };

    if (assign(assign, 0)) {
      if (matched_content_id != nullptr) {
        *matched_content_id = rec.sig.ContentId();
      }
      return chosen_threads;
    }
  }
  return {};
}

bool DimmunixRuntime::WouldCloseYieldCycle(
    const ThreadContext& ctx,
    const std::vector<ThreadContext*>& occupants) const {
  // DFS over yield edges (suspended -> occupants) and lock-wait edges
  // (blocked -> owner); if any occupant reaches ctx, suspending ctx would
  // close a cycle in which nobody can make progress.
  std::vector<const ThreadContext*> stack(occupants.begin(), occupants.end());
  std::unordered_set<const ThreadContext*> visited;
  while (!stack.empty()) {
    const ThreadContext* u = stack.back();
    stack.pop_back();
    if (u == &ctx) return true;
    if (!visited.insert(u).second) continue;
    if (u->waiting_for_ != nullptr && u->waiting_for_->owner_ != nullptr) {
      stack.push_back(u->waiting_for_->owner_);
    }
    if (u->in_avoidance_) {
      for (const ThreadContext* t : u->yield_targets_) stack.push_back(t);
    }
  }
  return false;
}

std::vector<DimmunixRuntime::CycleNode> DimmunixRuntime::FindLockCycle(
    const ThreadContext& ctx, const Monitor& m) const {
  std::vector<CycleNode> chain;
  std::unordered_set<const ThreadContext*> visited;
  ThreadContext* cur = m.owner_;
  while (cur != nullptr) {
    if (cur == &ctx) return chain;
    if (!visited.insert(cur).second) return {};  // cycle not involving ctx
    Monitor* w = cur->waiting_for_;
    if (w == nullptr) return {};
    chain.push_back(CycleNode{cur, w});
    cur = w->owner_;
  }
  return {};
}

Signature DimmunixRuntime::ExtractSignature(
    ThreadContext& /*ctx*/, Monitor& m, const CallStack& inner_of_ctx,
    const std::vector<CycleNode>& chain) const {
  std::vector<SignatureEntry> entries;
  entries.reserve(chain.size() + 1);

  // ctx holds the monitor the last chain thread waits for.
  {
    SignatureEntry e;
    e.outer = chain.back().waits_for->acq_stack_;
    e.inner = inner_of_ctx;
    entries.push_back(std::move(e));
  }
  // chain[0] holds m (waited by ctx); chain[i>0] holds chain[i-1]'s
  // waited monitor.
  for (std::size_t i = 0; i < chain.size(); ++i) {
    SignatureEntry e;
    e.outer = (i == 0) ? m.acq_stack_ : chain[i - 1].waits_for->acq_stack_;
    e.inner = chain[i].thread->waiting_stack_;
    entries.push_back(std::move(e));
  }
  return Signature(std::move(entries));
}

Status DimmunixRuntime::Acquire(ThreadContext& ctx, Monitor& m) {
  // Callbacks collected under the lock, invoked after unlocking.
  std::vector<std::pair<SignatureCallback, Signature>> pending;
  Status result = Status::Ok();

  // Snapshot the shadow stack before taking the runtime lock: it belongs
  // to the calling thread, and copying it is the most expensive part of
  // an uncontended acquisition.
  const CallStack stack = ctx.CaptureStack(options_.max_stack_depth);

  {
    std::unique_lock lock(mu_);
    ++stats_.acquisitions;

    if (m.owner_ == &ctx) {  // reentrant acquisition
      ++m.recursion_;
      return Status::Ok();
    }

    // ---- avoidance (§II-A) ----
    if (options_.avoidance_enabled && !history_.empty()) {
      std::unordered_set<std::uint64_t> counted;
      for (;;) {
        std::uint64_t matched = 0;
        auto occupants = FindImminentInstantiation(ctx, m, stack, &matched);
        if (occupants.empty()) break;
        if (WouldCloseYieldCycle(ctx, occupants)) {
          ++stats_.yield_cycle_overrides;
          break;
        }
        if (counted.insert(matched).second) {
          ++stats_.avoidance_suspensions;
          if (fp_detector_.RecordInstantiation(matched, clock_.Now())) {
            ++stats_.false_positives_flagged;
            // Locate the flagged signature for the warning callback.
            for (const SignatureRecord& r : history_.records()) {
              if (r.sig.ContentId() == matched) {
                if (false_positive_cb_) {
                  pending.emplace_back(false_positive_cb_, r.sig);
                }
                break;
              }
            }
            if (options_.auto_disable_false_positives) {
              history_.Disable(matched);
              NotifyStateChanged();
              // The signature no longer gates anyone; recheck immediately.
              continue;
            }
          }
        }
        ctx.in_avoidance_ = true;
        ctx.yield_targets_ = std::move(occupants);
        NotifyStateChanged();  // our state changed; others may recheck
        WaitForStateChange(lock);
        ctx.in_avoidance_ = false;
        ctx.yield_targets_.clear();
      }
    }

    // ---- blocking + detection (§II-A) ----
    bool counted_contention = false;
    while (m.owner_ != nullptr) {
      if (!counted_contention) {
        ++stats_.contended_acquisitions;
        counted_contention = true;
      }
      if (options_.detection_enabled) {
        const auto cycle = FindLockCycle(ctx, m);
        if (!cycle.empty()) {
          Signature sig = ExtractSignature(ctx, m, stack, cycle);
          ++stats_.deadlocks_detected;
          const bool novel_content =
              !history_.ContainsContent(sig.ContentId());
          // §III-D merge rule (1): two signatures produced on the local
          // machine merge with no depth floor. A new manifestation of a
          // locally-known bug generalizes the stored signature in place.
          bool merged = false;
          for (std::size_t i : history_.FindByBugKey(sig.BugKey())) {
            const SignatureRecord& rec = history_.record(i);
            if (rec.origin != SignatureOrigin::kLocal) continue;
            if (auto m2 = Signature::Merge(rec.sig, sig, 0)) {
              history_.Replace(i, std::move(*m2));
              merged = true;
              ++stats_.local_generalizations;
              break;
            }
          }
          if (!merged) {
            const int idx =
                history_.Add(sig, SignatureOrigin::kLocal, clock_.Now());
            if (idx >= 0) ++stats_.signatures_learned;
          }
          // The plugin uploads every new manifestation (the server and
          // other nodes generalize on their side too).
          if (novel_content && new_signature_cb_) {
            pending.emplace_back(new_signature_cb_, sig);
          }
          // Detection is the ground truth that this bug is real: reset FP
          // suspicion for all signatures of this bug.
          for (std::size_t i : history_.FindByBugKey(sig.BugKey())) {
            fp_detector_.RecordTruePositive(
                history_.record(i).sig.ContentId());
          }
          NotifyStateChanged();
          result = Status::Error(ErrorCode::kDeadlock,
                                 "deadlock detected; acquisition aborted");
          break;
        }
      }
      ctx.waiting_for_ = &m;
      ctx.waiting_stack_ = stack;
      NotifyStateChanged();  // blocking is a state change others must observe
      WaitForStateChange(lock);
      ctx.waiting_for_ = nullptr;
    }

    if (result.ok()) {
      m.owner_ = &ctx;
      m.recursion_ = 1;
      m.acq_stack_ = stack;
      ctx.held_.push_back(&m);
      NotifyStateChanged();  // occupancy changed
    }
  }

  for (auto& [cb, sig] : pending) cb(sig);
  return result;
}

void DimmunixRuntime::Release(ThreadContext& ctx, Monitor& m) {
  std::lock_guard lock(mu_);
  assert(m.owner_ == &ctx && "release by non-owner");
  if (--m.recursion_ > 0) return;
  m.owner_ = nullptr;
  m.acq_stack_ = CallStack();
  auto it = std::find(ctx.held_.begin(), ctx.held_.end(), &m);
  if (it != ctx.held_.end()) ctx.held_.erase(it);
  NotifyStateChanged();
}

int DimmunixRuntime::AddSignature(Signature sig, SignatureOrigin origin) {
  std::lock_guard lock(mu_);
  const int idx = history_.Add(std::move(sig), origin, clock_.Now());
  if (idx >= 0) ++stats_.signatures_learned;
  return idx;
}

void DimmunixRuntime::ReplaceSignature(std::size_t index, Signature sig) {
  std::lock_guard lock(mu_);
  history_.Replace(index, std::move(sig));
}

History DimmunixRuntime::SnapshotHistory() const {
  std::lock_guard lock(mu_);
  return history_;
}

void DimmunixRuntime::WithHistory(const std::function<void(History&)>& fn) {
  std::lock_guard lock(mu_);
  fn(history_);
}

void DimmunixRuntime::SetNewSignatureCallback(SignatureCallback cb) {
  std::lock_guard lock(mu_);
  new_signature_cb_ = std::move(cb);
}

void DimmunixRuntime::SetFalsePositiveCallback(SignatureCallback cb) {
  std::lock_guard lock(mu_);
  false_positive_cb_ = std::move(cb);
}

DimmunixRuntime::Stats DimmunixRuntime::GetStats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace communix::dimmunix
