#include "dimmunix/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "util/logging.hpp"

namespace communix::dimmunix {

std::atomic<std::uint64_t> Monitor::next_id_{1};

// The waiter bit lives in bit 0 of the packed owner word.
static_assert(alignof(ThreadContext) > 1,
              "ThreadContext must be aligned so Monitor::kWaiterBit is free");

DimmunixRuntime::DimmunixRuntime(Clock& clock, Options options)
    : clock_(clock),
      options_(options),
      fp_detector_(options.fp),
      occupancy_(options.occupancy_buckets == 0
                     ? OccupancyTable::kDefaultBuckets
                     : options.occupancy_buckets) {
  index_locked_ = AvoidanceIndex::Build(history_, 0,
                                        occupancy_.bucket_count());
  index_.store(index_locked_, std::memory_order_release);
}

DimmunixRuntime::~DimmunixRuntime() = default;

ThreadContext& DimmunixRuntime::AttachThread(std::string name) {
  std::lock_guard lock(mu_);
  ReapDetachedLocked();
  threads_.push_back(std::unique_ptr<ThreadContext>(
      new ThreadContext(next_thread_id_++, std::move(name))));
  return *threads_.back();
}

void DimmunixRuntime::DetachThread(ThreadContext& ctx) {
  std::lock_guard lock(mu_);
  assert(ctx.held_.empty() && "detaching thread still holds monitors");
  assert(ctx.waiting_for_ == nullptr);
  ctx.detached_ = true;
  // ctx may be freed by the reap below; it must not be touched afterwards
  // (the documented lifetime contract).
  ReapDetachedLocked();
}

void DimmunixRuntime::ReapDetachedLocked() {
  bool any_detached = false;
  for (const auto& t : threads_) {
    if (t->detached_) {
      any_detached = true;
      break;
    }
  }
  if (!any_detached) return;
  // A tombstone stays while (a) some live thread's yield_targets_ still
  // references it (a suspended avoider may hold the pointer across its
  // sleep) or (b) its owner's ScopedFrame guards have not all unwound
  // yet — guards destruct after DetachThread in the common RAII pattern,
  // and their PopFrame must not touch freed memory. Everything else is
  // reclaimed, so attach/detach churn no longer grows threads_ without
  // bound.
  std::unordered_set<const ThreadContext*> referenced;
  for (const auto& t : threads_) {
    if (t->detached_) continue;
    for (const ThreadContext* y : t->yield_targets_) referenced.insert(y);
  }
  std::uint64_t reaped = 0;
  std::erase_if(threads_, [&](const std::unique_ptr<ThreadContext>& t) {
    if (t->detached_ && referenced.count(t.get()) == 0 &&
        t->live_frames_.load(std::memory_order_acquire) == 0) {
      // Fold the tombstone's counter shard into the runtime's before the
      // memory goes away, so GetStats totals stay exact across churn.
      global_counters_.Absorb(t->counters_);
      ++reaped;
      return true;
    }
    return false;
  });
  global_counters_.threads_reaped.fetch_add(reaped, std::memory_order_relaxed);
}

void DimmunixRuntime::RepublishIndexLocked() {
  // Auto occupancy sizing, applied at index build from the candidate-key
  // count — but only while no thread has ever attached: with no attached
  // contexts there are no live occupancies (attach precedes every
  // Enter), so swapping the counter array cannot orphan an entry. Once a
  // workload thread exists, the width is frozen.
  if (options_.avoidance_enabled && options_.occupancy_buckets == 0 &&
      threads_.empty()) {
    const std::size_t want =
        OccupancyTable::RecommendedBuckets(CountCandidateKeys(history_));
    if (want > occupancy_.bucket_count()) occupancy_.Resize(want);
  }
  const std::uint64_t version = history_version_.fetch_add(1) + 1;
  const bool full = !options_.delta_index_rebuilds ||
                    options_.full_rebuild_period == 0 ||
                    ++republishes_since_full_ >= options_.full_rebuild_period;
  if (full) {
    index_locked_ =
        AvoidanceIndex::Build(history_, version, occupancy_.bucket_count());
    republishes_since_full_ = 0;
    global_counters_.index_full_rebuilds.fetch_add(1,
                                                   std::memory_order_relaxed);
  } else {
    index_locked_ = AvoidanceIndex::Rebuild(*index_locked_, history_, version,
                                            occupancy_.bucket_count());
    global_counters_.index_delta_rebuilds.fetch_add(1,
                                                    std::memory_order_relaxed);
    global_counters_.index_entries_reused.fetch_add(
        index_locked_->entries_reused(), std::memory_order_relaxed);
  }
  index_.store(index_locked_, std::memory_order_release);
  global_counters_.index_republishes.fetch_add(1, std::memory_order_relaxed);
}

void DimmunixRuntime::PublishAcquisition(ThreadContext& ctx, Monitor& m,
                                         const CallStack& stack) {
  const std::uint32_t bucket = occupancy_.Bucket(stack.TopKey());
  // Occupancy discipline: enter the bucket *before* the holding becomes
  // visible, leave it only *after* retraction (UnpublishAcquisition) —
  // a zero bucket must prove no matching occupant is visible.
  if (options_.avoidance_enabled) occupancy_.Enter(bucket);
  std::lock_guard pub(ctx.state_mu_);
  m.recursion_ = 1;
  m.acq_stack_ = stack;
  m.acq_bucket_ = bucket;
  ctx.held_.push_back(&m);
}

void DimmunixRuntime::UnpublishAcquisition(ThreadContext& ctx, Monitor& m) {
  // Runs while `ctx` still owns `m`: scanners holding state_mu_ see the
  // holding and its stack atomically retracted, and no new owner can
  // write acq_stack_ until owner_ is cleared afterwards.
  std::uint32_t bucket;
  {
    std::lock_guard pub(ctx.state_mu_);
    auto it = std::find(ctx.held_.begin(), ctx.held_.end(), &m);
    if (it != ctx.held_.end()) ctx.held_.erase(it);
    m.acq_stack_ = CallStack();
    bucket = m.acq_bucket_;
    m.acq_bucket_ = 0;
    m.recursion_ = 0;
  }
  if (options_.avoidance_enabled) occupancy_.Leave(bucket);
}

std::vector<ThreadContext*> DimmunixRuntime::FindImminentInstantiation(
    const ThreadContext& ctx, const Monitor& m, const CallStack& stack,
    const AvoidanceIndex& index, std::uint64_t* matched_content_id) const {
  const auto* cands = index.CandidatesForTopFrame(stack.TopKey());
  if (cands == nullptr) return {};

  for (const auto& cand : *cands) {
    const AvoidanceIndex::Entry& rec = index.entry(cand.ordinal);
    const auto& entries = rec.sig.entries();
    const std::size_t n = entries.size();
    const std::size_t pos = cand.position;
    if (n < 2) continue;
    if (!entries[pos].outer.MatchesSuffixOf(stack)) continue;

    // Candidate occupants for every other position.
    std::vector<std::vector<Occupant>> options(n);
    bool feasible = true;
    for (std::size_t j = 0; j < n && feasible; ++j) {
      if (j == pos) continue;
      for (const auto& uptr : threads_) {
        ThreadContext* u = uptr.get();
        if (u == &ctx || u->detached_) continue;
        {
          // Sample the thread's published held-set under its publication
          // lock: fast-path acquisitions are visible here even though
          // they never took the runtime lock.
          std::lock_guard pub(u->state_mu_);
          for (Monitor* h : u->held_) {
            if (h == &m) continue;
            if (entries[j].outer.MatchesSuffixOf(h->acq_stack_)) {
              options[j].push_back(Occupant{u, h});
            }
          }
          // An in-flight fast-path acquisition counts too ("holding or
          // blocked at"): whether its CAS wins (holding) or loses (about
          // to block), the thread is at that lock statement with this
          // stack in every equivalent global-lock serialization.
          if (u->pending_acquire_ != nullptr && u->pending_acquire_ != &m &&
              entries[j].outer.MatchesSuffixOf(u->pending_stack_)) {
            options[j].push_back(Occupant{u, u->pending_acquire_});
          }
        }
        if (u->waiting_for_ != nullptr && u->waiting_for_ != &m &&
            entries[j].outer.MatchesSuffixOf(u->waiting_stack_)) {
          options[j].push_back(Occupant{u, u->waiting_for_});
        }
      }
      if (options[j].empty()) feasible = false;
    }
    if (!feasible) continue;

    // Injective assignment: distinct threads on pairwise-distinct locks.
    std::vector<std::size_t> fill;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != pos) fill.push_back(j);
    }
    std::vector<ThreadContext*> chosen_threads;
    std::vector<const Monitor*> chosen_locks = {&m};

    auto assign = [&](auto&& self, std::size_t k) -> bool {
      if (k == fill.size()) return true;
      for (const Occupant& o : options[fill[k]]) {
        if (std::find(chosen_threads.begin(), chosen_threads.end(),
                      o.thread) != chosen_threads.end()) {
          continue;
        }
        if (std::find(chosen_locks.begin(), chosen_locks.end(), o.lock) !=
            chosen_locks.end()) {
          continue;
        }
        chosen_threads.push_back(o.thread);
        chosen_locks.push_back(o.lock);
        if (self(self, k + 1)) return true;
        chosen_threads.pop_back();
        chosen_locks.pop_back();
      }
      return false;
    };

    if (assign(assign, 0)) {
      if (matched_content_id != nullptr) {
        *matched_content_id = rec.content_id;
      }
      return chosen_threads;
    }
  }
  return {};
}

bool DimmunixRuntime::WouldCloseYieldCycle(
    const ThreadContext& ctx,
    const std::vector<ThreadContext*>& occupants) const {
  // DFS over yield edges (suspended -> occupants) and lock-wait edges
  // (blocked -> owner); if any occupant reaches ctx, suspending ctx would
  // close a cycle in which nobody can make progress.
  std::vector<const ThreadContext*> stack(occupants.begin(), occupants.end());
  std::unordered_set<const ThreadContext*> visited;
  while (!stack.empty()) {
    const ThreadContext* u = stack.back();
    stack.pop_back();
    if (u == &ctx) return true;
    if (!visited.insert(u).second) continue;
    if (u->waiting_for_ != nullptr) {
      ThreadContext* owner = u->waiting_for_->owner(std::memory_order_acquire);
      if (owner != nullptr) stack.push_back(owner);
    }
    if (u->in_avoidance_) {
      for (const ThreadContext* t : u->yield_targets_) stack.push_back(t);
    }
  }
  return false;
}

std::vector<DimmunixRuntime::CycleNode> DimmunixRuntime::FindLockCycle(
    const ThreadContext& ctx, const Monitor& m) const {
  std::vector<CycleNode> chain;
  std::unordered_set<const ThreadContext*> visited;
  // A monitor whose ownership was just handed to a still-parked waiter
  // is a benign transient here: that owner's waiting_for_ still names
  // the monitor it now owns, so the walk revisits it and the visited set
  // cuts the self-loop — no false cycle, and the real edges re-appear
  // once the waiter wakes and retracts its announcement.
  ThreadContext* cur = m.owner(std::memory_order_acquire);
  while (cur != nullptr) {
    if (cur == &ctx) return chain;
    if (!visited.insert(cur).second) return {};  // cycle not involving ctx
    Monitor* w = cur->waiting_for_;
    if (w == nullptr) return {};
    chain.push_back(CycleNode{cur, w});
    cur = w->owner(std::memory_order_acquire);
  }
  return {};
}

Signature DimmunixRuntime::ExtractSignature(
    ThreadContext& /*ctx*/, Monitor& m, const CallStack& inner_of_ctx,
    const std::vector<CycleNode>& chain) const {
  // Every monitor referenced here is owned by a thread parked in the
  // runtime's wait loop (the cycle's precondition), so its acq_stack_ is
  // quiescent and was published before that owner took mu_ to park.
  std::vector<SignatureEntry> entries;
  entries.reserve(chain.size() + 1);

  // ctx holds the monitor the last chain thread waits for.
  {
    SignatureEntry e;
    e.outer = chain.back().waits_for->acq_stack_;
    e.inner = inner_of_ctx;
    entries.push_back(std::move(e));
  }
  // chain[0] holds m (waited by ctx); chain[i>0] holds chain[i-1]'s
  // waited monitor.
  for (std::size_t i = 0; i < chain.size(); ++i) {
    SignatureEntry e;
    e.outer = (i == 0) ? m.acq_stack_ : chain[i - 1].waits_for->acq_stack_;
    e.inner = chain[i].thread->waiting_stack_;
    entries.push_back(std::move(e));
  }
  return Signature(std::move(entries));
}

Status DimmunixRuntime::Acquire(ThreadContext& ctx, Monitor& m) {
  ctx.counters_.acquisitions.fetch_add(1, std::memory_order_relaxed);

  if (options_.mode == RuntimeMode::kFastPath) {
    // Reentrancy: owner == &ctx can only be observed by the owner itself
    // (nobody hands us a monitor we are not blocked on and only we
    // release it), so this read is stable and the recursion bump needs no
    // lock.
    if (m.owner(std::memory_order_relaxed) == &ctx) {
      ++m.recursion_;
      return Status::Ok();
    }
    // Snapshot the shadow stack before any locking: it belongs to the
    // calling thread, and copying it is the most expensive part of an
    // uncontended acquisition.
    const CallStack stack = ctx.CaptureStack(options_.max_stack_depth);
    if (TryFastAcquire(ctx, m, stack)) return Status::Ok();
    ctx.counters_.slow_path_entries.fetch_add(1, std::memory_order_relaxed);
    return AcquireSlow(ctx, m, stack);
  }

  const CallStack stack = ctx.CaptureStack(options_.max_stack_depth);
  ctx.counters_.slow_path_entries.fetch_add(1, std::memory_order_relaxed);
  return AcquireSlow(ctx, m, stack);
}

bool DimmunixRuntime::TryFastAcquire(ThreadContext& ctx, Monitor& m,
                                     const CallStack& stack) {
  if (options_.avoidance_enabled) {
    const std::shared_ptr<const AvoidanceIndex> index =
        index_.load(std::memory_order_acquire);
    if (!index->empty() &&
        index->CandidatesForTopFrame(stack.TopKey()) != nullptr) {
      // Some enabled signature has an outer stack ending at this lock
      // statement: the instantiation check must run under the lock.
      return false;
    }
    // No candidates: no enabled signature gates this acquisition *now*,
    // so its own avoidance check is a no-op. The acquisition linearizes
    // at the index load above — a signature published after it behaves
    // as if installed just after this acquisition's gate was evaluated,
    // exactly like a global-lock acquisition that ran just before the
    // install. The pending slot below keeps the other half of that
    // equivalence: such an acquisition must still be *visible* to every
    // later instantiation scan.
  }
  // Advertise the attempt before claiming ownership: an avoidance scan
  // that runs between the CAS and the held_-set publication still sees
  // (monitor, stack) via the pending slot, so there is no window in
  // which a concurrently installed signature could miss this holder.
  // The occupancy bucket is entered first of all (and left only if the
  // CAS loses): a zero bucket read by the adaptive gate proves this
  // thread is not yet a visible occupant, ordering the gated
  // acquisition before ours in the equivalent serialization.
  const std::uint32_t bucket = occupancy_.Bucket(stack.TopKey());
  if (options_.avoidance_enabled) occupancy_.Enter(bucket);
  {
    std::lock_guard pub(ctx.state_mu_);
    ctx.pending_acquire_ = &m;
    ctx.pending_stack_ = stack;
  }
  std::uintptr_t expected = 0;
  if (!m.owner_word_.compare_exchange_strong(expected,
                                             Monitor::Pack(&ctx, false),
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
    if ((expected & Monitor::kWaiterBit) != 0) {
      // The word carries the waiter bit: parked waiters are queued, the
      // word never returns to 0 until the queue drains, and this CAS —
      // which under the barging protocol could have stolen the monitor
      // the instant a release freed it — is structurally locked out.
      ctx.counters_.barges_prevented.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard pub(ctx.state_mu_);
      ctx.pending_acquire_ = nullptr;
    }
    if (options_.avoidance_enabled) occupancy_.Leave(bucket);
    return false;  // contended: blocking/detection belongs to the slow path
  }
  {
    std::lock_guard pub(ctx.state_mu_);
    m.recursion_ = 1;
    m.acq_stack_ = std::move(ctx.pending_stack_);
    m.acq_bucket_ = bucket;  // the pending entry transfers to the holding
    ctx.held_.push_back(&m);
    ctx.pending_acquire_ = nullptr;
  }
  ctx.counters_.fast_path_acquisitions.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status DimmunixRuntime::AcquireSlow(ThreadContext& ctx, Monitor& m,
                                    const CallStack& stack) {
  // Callbacks collected under the lock, invoked after unlocking.
  std::vector<std::pair<SignatureCallback, Signature>> pending;
  Status result = Status::Ok();

  {
    std::unique_lock lock(mu_);

    if (m.owner(std::memory_order_relaxed) == &ctx) {  // reentrant
      ++m.recursion_;
      return Status::Ok();
    }

    // ---- avoidance (§II-A) ----
    if (options_.avoidance_enabled && !index_locked_->empty()) {
      const std::uint64_t top_key = stack.TopKey();
      std::unordered_set<std::uint64_t> counted;
      for (;;) {
        // The version must be sampled before the scan: a fast-path
        // release between the scan and the park bumps it, and the gated
        // wait then re-scans instead of sleeping on a stale decision.
        const std::uint64_t observed = state_version_.load();
        // Re-probed every iteration: a republish while we slept may have
        // changed (or emptied) the candidate set for this key.
        const AvoidanceIndex::KeySlot* slot =
            index_locked_->SlotForTopFrame(top_key);
        if (slot == nullptr) break;  // no candidates gate this site
        // Adaptive gate: if no thread occupies any *other* position of
        // any candidate signature (all peer buckets zero), the
        // instantiation scan is provably empty — skip it. Occupant-set
        // changes re-arm automatically (the gate reads live counters);
        // index changes re-arm via the republished slot above.
        bool verifying_skip = false;
        if (AdaptiveGateEnabled() &&
            !occupancy_.AnyOccupied(slot->peer_buckets)) {
          const std::uint64_t hits = ++slot->stats->gate_hits;
          if (options_.adaptive_verify_sample == 0 ||
              hits % options_.adaptive_verify_sample != 0) {
            // scans_skipped counts only scans actually elided, so
            // scans_skipped + instantiation_scans = candidate-hit gate
            // evaluations (exact arithmetic for the bench/tests).
            ctx.counters_.scans_skipped.fetch_add(1,
                                                  std::memory_order_relaxed);
            break;
          }
          // Sampled self-check: run the scan anyway; if the gate is
          // right it finds nothing, and if it is wrong we fail safe by
          // honoring the scan (and count the mismatch).
          verifying_skip = true;
          ++slot->stats->verify_scans;
          ctx.counters_.sampled_verification_scans.fetch_add(
              1, std::memory_order_relaxed);
        }
        std::uint64_t matched = 0;
        ++slot->stats->scans;
        ctx.counters_.instantiation_scans.fetch_add(1,
                                                    std::memory_order_relaxed);
        auto occupants = FindImminentInstantiation(ctx, m, stack,
                                                   *index_locked_, &matched);
        if (occupants.empty()) break;
        ++slot->stats->instantiations;
        if (verifying_skip) {
          ctx.counters_.adaptive_gate_mismatches.fetch_add(
              1, std::memory_order_relaxed);
        }
        if (WouldCloseYieldCycle(ctx, occupants)) {
          ctx.counters_.yield_cycle_overrides.fetch_add(
              1, std::memory_order_relaxed);
          break;
        }
        if (counted.insert(matched).second) {
          ctx.counters_.avoidance_suspensions.fetch_add(
              1, std::memory_order_relaxed);
          if (fp_detector_.RecordInstantiation(matched, clock_.Now())) {
            ctx.counters_.false_positives_flagged.fetch_add(
                1, std::memory_order_relaxed);
            // Locate the flagged signature for the warning callback.
            for (const SignatureRecord& r : history_.records()) {
              if (r.sig.ContentId() == matched) {
                if (false_positive_cb_) {
                  pending.emplace_back(false_positive_cb_, r.sig);
                }
                break;
              }
            }
            if (options_.auto_disable_false_positives) {
              history_.Disable(matched);
              RepublishIndexLocked();
              NotifyStateChangedLocked();
              // The signature no longer gates anyone; recheck immediately.
              continue;
            }
          }
        }
        ctx.yield_targets_ = std::move(occupants);
        if (!ctx.in_avoidance_) {
          ctx.in_avoidance_ = true;
          // Our new yield edges may flip another avoider's cycle check;
          // announce them. The announcement bumps the version, so loop
          // once more to re-sample it — otherwise our own bump would
          // satisfy the wait predicate and the park would spin.
          NotifyStateChangedLocked();
          continue;
        }
        WaitForStateChange(ctx, lock, observed);
      }
      if (ctx.in_avoidance_) {
        ctx.in_avoidance_ = false;
        ctx.yield_targets_.clear();
      }
    }

    // ---- blocking + detection (§II-A) ----
    const std::uint32_t self_bucket = occupancy_.Bucket(stack.TopKey());
    bool counted_contention = false;
    bool announced = false;
    bool granted = false;
    for (;;) {
      const std::uint64_t observed = state_version_.load();
      // Direct handoff: a releasing owner that saw our queue entry wrote
      // us straight into the owner word while we were parked. No CAS —
      // the word already names us (possibly with the waiter bit for the
      // queue tail behind us).
      if (m.owner(std::memory_order_acquire) == &ctx) {
        granted = true;
        break;
      }
      std::uintptr_t free_word = 0;
      if (m.owner_word_.compare_exchange_strong(free_word,
                                                Monitor::Pack(&ctx, false),
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
        granted = true;
        break;
      }
      if (!counted_contention) {
        ctx.counters_.contended_acquisitions.fetch_add(
            1, std::memory_order_relaxed);
        counted_contention = true;
      }
      if (options_.detection_enabled) {
        const auto cycle = FindLockCycle(ctx, m);
        if (!cycle.empty()) {
          Signature sig = ExtractSignature(ctx, m, stack, cycle);
          ctx.counters_.deadlocks_detected.fetch_add(
              1, std::memory_order_relaxed);
          const bool novel_content =
              !history_.ContainsContent(sig.ContentId());
          // §III-D merge rule (1): two signatures produced on the local
          // machine merge with no depth floor. A new manifestation of a
          // locally-known bug generalizes the stored signature in place.
          bool merged = false;
          for (std::size_t i : history_.FindByBugKey(sig.BugKey())) {
            const SignatureRecord& rec = history_.record(i);
            if (rec.origin != SignatureOrigin::kLocal) continue;
            if (auto m2 = Signature::Merge(rec.sig, sig, 0)) {
              history_.Replace(i, std::move(*m2));
              merged = true;
              ctx.counters_.local_generalizations.fetch_add(
                  1, std::memory_order_relaxed);
              break;
            }
          }
          if (!merged) {
            const int idx =
                history_.Add(sig, SignatureOrigin::kLocal, clock_.Now());
            if (idx >= 0) {
              ctx.counters_.signatures_learned.fetch_add(
                  1, std::memory_order_relaxed);
            }
          }
          // The plugin uploads every new manifestation (the server and
          // other nodes generalize on their side too).
          if (novel_content && new_signature_cb_) {
            pending.emplace_back(new_signature_cb_, sig);
          }
          // Detection is the ground truth that this bug is real: reset FP
          // suspicion for all signatures of this bug.
          for (std::size_t i : history_.FindByBugKey(sig.BugKey())) {
            fp_detector_.RecordTruePositive(
                history_.record(i).sig.ContentId());
          }
          RepublishIndexLocked();
          NotifyStateChangedLocked();
          result = Status::Error(ErrorCode::kDeadlock,
                                 "deadlock detected; acquisition aborted");
          break;
        }
      }
      if (!announced) {
        // The block announcement is a published occupancy ("blocked at"
        // counts toward instantiations): enter the bucket before it
        // becomes visible. All transitions here run under mu_, so the
        // adaptive gate (also under mu_) sees them atomically. The queue
        // entry makes us a handoff candidate from here on.
        if (options_.avoidance_enabled) occupancy_.Enter(self_bucket);
        ctx.waiting_for_ = &m;
        ctx.waiting_stack_ = stack;
        m.wait_queue_.push_back(&ctx);
        // Blocking is a state change others must observe; same
        // announce-then-resample dance as in the avoidance loop.
        NotifyStateChangedLocked();
        announced = true;
        continue;
      }
      // Before parking, make sure the owner word carries the waiter bit:
      // a release that observes it must hand off instead of storing 0,
      // which is what keeps a fast-path barger from ever stealing the
      // monitor while we sleep. If the word goes free mid-flag, do not
      // park — the next iteration claims it (we hold mu_ throughout, so
      // only a fast-path claim can race, and losing that race lands us
      // back here with a non-zero word to flag).
      std::uintptr_t cur = m.owner_word_.load(std::memory_order_relaxed);
      bool flagged = false;
      while (cur != 0) {
        if ((cur & Monitor::kWaiterBit) != 0 ||
            m.owner_word_.compare_exchange_weak(cur,
                                                cur | Monitor::kWaiterBit)) {
          flagged = true;
          break;
        }
      }
      if (!flagged) continue;
      WaitForStateChange(ctx, lock, observed);
    }
    if (announced) {
      // A handoff grant dequeues us on the releasing side; a CAS grant or
      // a detection abort leaves our queue entry behind — retract it. (A
      // stale waiter bit is harmless: the next release rewrites the whole
      // word from the queue state.)
      auto it = std::find(m.wait_queue_.begin(), m.wait_queue_.end(), &ctx);
      if (it != m.wait_queue_.end()) m.wait_queue_.erase(it);
      ctx.waiting_for_ = nullptr;
      if (options_.avoidance_enabled) occupancy_.Leave(self_bucket);
    }

    if (granted) {
      PublishAcquisition(ctx, m, stack);
      // Others may still be queued behind us (we claimed by CAS in the
      // instant before a not-yet-parked waiter flagged the word, or a
      // handoff left a tail): keep the waiter bit so our own release
      // hands off rather than barging them.
      if (!m.wait_queue_.empty()) {
        m.owner_word_.fetch_or(Monitor::kWaiterBit);
      }
      NotifyStateChangedLocked();  // occupancy changed
    }
  }

  for (auto& [cb, sig] : pending) cb(sig);
  return result;
}

void DimmunixRuntime::Release(ThreadContext& ctx, Monitor& m) {
  if (options_.mode == RuntimeMode::kFastPath) {
    assert(m.owner(std::memory_order_relaxed) == &ctx &&
           "release by non-owner");
    if (m.recursion_ > 1) {  // owner-only field; see Monitor's protocol
      --m.recursion_;
      return;
    }
    UnpublishAcquisition(ctx, m);
    // seq_cst on the owner clear, version bump and sleeper probe: if the
    // probe reads 0, any concurrent would-be sleeper's predicate check is
    // ordered after our bump and refuses to park (no lost wakeup); if it
    // reads >0, we take the mutex so the notify cannot land in a waiter's
    // check-to-park window. The clear is a CAS, not a store: it only
    // frees the word if the waiter bit is clear.
    std::uintptr_t expected = Monitor::Pack(&ctx, false);
    if (m.owner_word_.compare_exchange_strong(expected, 0)) {
      state_version_.fetch_add(1);
      if (sleepers_.load() > 0) {
        std::lock_guard lock(mu_);
        cv_.notify_all();
      } else {
        ctx.counters_.fast_path_releases.fetch_add(1,
                                                   std::memory_order_relaxed);
      }
      return;
    }
    // Waiter bit set: a blocked acquirer is queued (it flags the word
    // only after enqueueing under mu_, and it parks only after the flag
    // sticks). Storing 0 here is exactly the barging steal window this
    // protocol removes — hand the word to a queued waiter instead.
    std::lock_guard lock(mu_);
    HandoffLocked(ctx, m);
    NotifyStateChangedLocked();
    return;
  }
  ReleaseSlow(ctx, m);
}

void DimmunixRuntime::ReleaseSlow(ThreadContext& ctx, Monitor& m) {
  std::lock_guard lock(mu_);
  assert(m.owner(std::memory_order_relaxed) == &ctx &&
         "release by non-owner");
  if (m.recursion_ > 1) {
    --m.recursion_;
    return;
  }
  UnpublishAcquisition(ctx, m);
  HandoffLocked(ctx, m);
  NotifyStateChangedLocked();
}

void DimmunixRuntime::HandoffLocked(ThreadContext& ctx, Monitor& m) {
  if (m.wait_queue_.empty()) {
    // Nobody to hand to (any waiter bit is a leftover from a detection
    // abort): free the word. seq_cst to pair with the version-gated
    // sleeper probe, as in the fast release.
    m.owner_word_.store(0);
    return;
  }
  std::size_t pick = 0;
  if (wake_order_hook_) {
    const std::vector<const ThreadContext*> candidates(m.wait_queue_.begin(),
                                                       m.wait_queue_.end());
    pick = std::min(wake_order_hook_(candidates), candidates.size() - 1);
  }
  ThreadContext* next = m.wait_queue_[pick];
  m.wait_queue_.erase(m.wait_queue_.begin() +
                      static_cast<std::ptrdiff_t>(pick));
  // The winner finds owner == self when it re-checks — no CAS, no window
  // in which a fast-path claim could slip in. The bit survives iff a
  // queue tail remains.
  m.owner_word_.store(Monitor::Pack(next, !m.wait_queue_.empty()));
  ctx.counters_.handoffs.fetch_add(1, std::memory_order_relaxed);
}

void DimmunixRuntime::WaitForStateChange(ThreadContext& ctx,
                                         std::unique_lock<std::mutex>& lock,
                                         std::uint64_t observed) {
  ctx.counters_.wait_rounds.fetch_add(1, std::memory_order_relaxed);
  sleepers_.fetch_add(1);
  ctx.park_version_.store(observed, std::memory_order_release);
  ctx.parked_.store(true, std::memory_order_release);
  parked_order_.push_back(&ctx);
  // Turnstile: of the parked threads with a stale version, one at a time
  // (lowest id, or the wake-order hook's pick) is released to re-examine
  // the world. Each woken thread passes the turn on below; every proceed
  // path bumps the version, so wake chains drain deterministically
  // instead of racing on the condition variable.
  cv_.wait(lock, [&] {
    return state_version_.load() != observed && IsWakeTurnLocked(ctx);
  });
  parked_order_.erase(
      std::find(parked_order_.begin(), parked_order_.end(), &ctx));
  ctx.parked_.store(false, std::memory_order_release);
  sleepers_.fetch_sub(1);
  // Pass the turn: the next stale sleeper's predicate flips once we drop
  // mu_ (held until we re-park with a fresh version or leave Acquire).
  cv_.notify_all();
}

bool DimmunixRuntime::IsWakeTurnLocked(const ThreadContext& ctx) const {
  const std::uint64_t version = state_version_.load();
  std::vector<const ThreadContext*> pending;
  for (const ThreadContext* p : parked_order_) {
    if (p->park_version_.load(std::memory_order_relaxed) != version) {
      pending.push_back(p);
    }
  }
  if (pending.empty()) return false;
  // Ascending thread id, not park order: ids are assigned at attach, so
  // the order is identical across runtime modes — re-park churn must not
  // perturb which thread wins (the equivalence tests pin this).
  std::sort(pending.begin(), pending.end(),
            [](const ThreadContext* a, const ThreadContext* b) {
              return a->id() < b->id();
            });
  std::size_t pick = 0;
  if (wake_order_hook_) {
    pick = std::min(wake_order_hook_(pending), pending.size() - 1);
  }
  return pending[pick] == &ctx;
}

void DimmunixRuntime::SetWakeOrderHookForTest(WakeOrderHook hook) {
  std::lock_guard lock(mu_);
  wake_order_hook_ = std::move(hook);
}

int DimmunixRuntime::AddSignature(Signature sig, SignatureOrigin origin) {
  std::lock_guard lock(mu_);
  const int idx = history_.Add(std::move(sig), origin, clock_.Now());
  if (idx >= 0) {
    global_counters_.signatures_learned.fetch_add(1,
                                                  std::memory_order_relaxed);
    RepublishIndexLocked();
    NotifyStateChangedLocked();
  }
  return idx;
}

void DimmunixRuntime::ReplaceSignature(std::size_t index, Signature sig) {
  std::lock_guard lock(mu_);
  history_.Replace(index, std::move(sig));
  RepublishIndexLocked();
  NotifyStateChangedLocked();
}

History DimmunixRuntime::SnapshotHistory() const {
  std::lock_guard lock(mu_);
  return history_;
}

std::optional<History> DimmunixRuntime::SnapshotHistoryIfChanged(
    std::uint64_t* last_seen) const {
  if (last_seen != nullptr &&
      history_version_.load(std::memory_order_acquire) == *last_seen) {
    return std::nullopt;  // unchanged: no lock, no deep copy
  }
  std::lock_guard lock(mu_);
  if (last_seen != nullptr) {
    *last_seen = history_version_.load(std::memory_order_relaxed);
  }
  return history_;
}

std::vector<std::uint64_t> DimmunixRuntime::DrainRetiredContentIds() {
  std::lock_guard lock(mu_);
  // Pure drain: no index republish — retiring ids changes what the
  // *server* should keep, not what this process avoids.
  return history_.TakeRetiredContentIds();
}

void DimmunixRuntime::WithHistory(const std::function<void(History&)>& fn) {
  std::lock_guard lock(mu_);
  fn(history_);
  // The mutation (if any) must reach fast-path readers and may lift the
  // gate a suspended avoider sleeps on (e.g. Disable): republish + wake.
  RepublishIndexLocked();
  NotifyStateChangedLocked();
}

void DimmunixRuntime::SetNewSignatureCallback(SignatureCallback cb) {
  std::lock_guard lock(mu_);
  new_signature_cb_ = std::move(cb);
}

void DimmunixRuntime::SetFalsePositiveCallback(SignatureCallback cb) {
  std::lock_guard lock(mu_);
  false_positive_cb_ = std::move(cb);
}

DimmunixRuntime::Stats DimmunixRuntime::GetStats() const {
  std::lock_guard lock(mu_);
  Stats s;
  global_counters_.AccumulateInto(s);
  // Per-thread shards: live threads keep counting concurrently (relaxed
  // reads give a consistent-enough snapshot, as before the sharding);
  // tombstones are quiescent and still counted until the reap folds them
  // into the runtime shard.
  for (const auto& t : threads_) t->counters_.AccumulateInto(s);
  // Gauges: current table geometry + the published index's collision
  // count (not counter shards — they describe state, not events).
  s.occupancy_buckets = occupancy_.bucket_count();
  s.occupancy_key_collisions = index_locked_->key_bucket_collisions();
  return s;
}

std::size_t DimmunixRuntime::ThreadRecordCount() const {
  std::lock_guard lock(mu_);
  return threads_.size();
}

obs::ProbeHandle DimmunixRuntime::ExportStats(obs::MetricsRegistry& registry,
                                              std::string prefix) const {
  return registry.RegisterProbe([this, prefix = std::move(prefix)](
                                    obs::ProbeSink& sink) {
    const Stats s = GetStats();
    const auto c = [&](const char* name, std::uint64_t v) {
      sink.EmitCounter(prefix + "." + name, v);
    };
    c("acquisitions", s.acquisitions);
    c("contended_acquisitions", s.contended_acquisitions);
    c("avoidance_suspensions", s.avoidance_suspensions);
    c("yield_cycle_overrides", s.yield_cycle_overrides);
    c("deadlocks_detected", s.deadlocks_detected);
    c("signatures_learned", s.signatures_learned);
    c("local_generalizations", s.local_generalizations);
    c("false_positives_flagged", s.false_positives_flagged);
    c("fast_path_acquisitions", s.fast_path_acquisitions);
    c("fast_path_releases", s.fast_path_releases);
    c("slow_path_entries", s.slow_path_entries);
    c("wait_rounds", s.wait_rounds);
    c("handoffs", s.handoffs);
    c("barges_prevented", s.barges_prevented);
    c("instantiation_scans", s.instantiation_scans);
    c("scans_skipped", s.scans_skipped);
    c("sampled_verification_scans", s.sampled_verification_scans);
    c("adaptive_gate_mismatches", s.adaptive_gate_mismatches);
    c("index_republishes", s.index_republishes);
    c("index_delta_rebuilds", s.index_delta_rebuilds);
    c("index_full_rebuilds", s.index_full_rebuilds);
    c("index_entries_reused", s.index_entries_reused);
    c("threads_reaped", s.threads_reaped);
    sink.EmitGauge(prefix + ".occupancy_buckets", s.occupancy_buckets);
    sink.EmitGauge(prefix + ".occupancy_key_collisions",
                   s.occupancy_key_collisions);
  });
}

}  // namespace communix::dimmunix
