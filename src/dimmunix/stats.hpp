// Runtime statistics: public snapshot struct + relaxed-atomic counter
// shard.
//
// The runtime used to keep one shared relaxed-atomic Counters mirror;
// every fast-path acquisition still touched those shared cachelines. The
// counters are now sharded: each ThreadContext owns a StatCounters the
// owning thread bumps without contention, the runtime keeps one more
// shard for events with no acquiring thread (index republishes, history
// injection, reaping), and GetStats() sums the shards — the same
// aggregation scheme as the Communix server's sharded store stats.
// Tombstoned contexts fold their shard into the runtime's before they are
// reaped, so totals are exact across attach/detach churn.
#pragma once

#include <atomic>
#include <cstdint>

namespace communix::dimmunix {

/// Plain aggregated snapshot, returned by DimmunixRuntime::GetStats().
struct RuntimeStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t contended_acquisitions = 0;
  std::uint64_t avoidance_suspensions = 0;
  std::uint64_t yield_cycle_overrides = 0;
  std::uint64_t deadlocks_detected = 0;
  std::uint64_t signatures_learned = 0;
  /// Detections that generalized an existing local signature (§III-D
  /// merge rule 1) instead of adding a new history entry.
  std::uint64_t local_generalizations = 0;
  std::uint64_t false_positives_flagged = 0;
  /// Acquisitions completed by the lock-free path (candidate-free top
  /// frame, uncontended CAS) without touching the runtime mutex.
  std::uint64_t fast_path_acquisitions = 0;
  /// Releases that neither took the runtime mutex nor had to wake anyone.
  std::uint64_t fast_path_releases = 0;
  /// Acquisitions that entered the global-lock slow path (every
  /// acquisition, in kGlobalLock mode).
  std::uint64_t slow_path_entries = 0;
  /// Times a thread parked in the runtime's version-gated wait loop.
  std::uint64_t wait_rounds = 0;
  /// Releases that transferred ownership directly to a queued waiter
  /// (the waiter bit was set) instead of freeing the owner word.
  std::uint64_t handoffs = 0;
  /// Fast-path claim CASes that failed while the waiter bit was set: a
  /// would-be barger turned away from a monitor with parked waiters. The
  /// barging protocol could have let such a CAS steal the monitor right
  /// after a release; direct handoff makes the steal structurally
  /// impossible (the word never reads free while the queue is non-empty).
  std::uint64_t barges_prevented = 0;
  /// Full instantiation scans actually executed by the avoidance module.
  std::uint64_t instantiation_scans = 0;
  /// Instantiation scans the adaptive gate actually elided (no thread
  /// occupied any other signature position, and the round was not a
  /// sampled verification). scans_skipped + instantiation_scans equals
  /// the candidate-hit scan evaluations; decisions are unchanged.
  std::uint64_t scans_skipped = 0;
  /// Scans the adaptive gate ran anyway (1-in-N sampling of skips) to
  /// validate the gate invariant.
  std::uint64_t sampled_verification_scans = 0;
  /// Sampled verification scans that found an instantiation the gate
  /// claimed impossible. Always 0 unless the occupancy protocol is
  /// broken; the runtime fails safe (yields as the reference would).
  std::uint64_t adaptive_gate_mismatches = 0;
  /// Times the avoidance index was rebuilt and re-published (total).
  std::uint64_t index_republishes = 0;
  /// Republishes served by a delta rebuild (entries reused from the
  /// previous snapshot) vs. a from-scratch full build.
  std::uint64_t index_delta_rebuilds = 0;
  std::uint64_t index_full_rebuilds = 0;
  /// Signature entries delta rebuilds reused (not deep-copied).
  std::uint64_t index_entries_reused = 0;
  /// Tombstoned thread contexts reclaimed.
  std::uint64_t threads_reaped = 0;

  // ---- gauges (current state, not counter shards) ----

  /// Occupancy-table width currently in effect (see
  /// Options::occupancy_buckets; auto mode grows it at index build).
  std::uint64_t occupancy_buckets = 0;
  /// Distinct index keys sharing an occupancy bucket in the *current*
  /// avoidance-index snapshot. Each collision costs lost gate skips
  /// whenever the colliding key is occupied; a persistently nonzero
  /// value is the signal to widen the table.
  std::uint64_t occupancy_key_collisions = 0;
};

/// One shard of relaxed-atomic counters (same shape as the Communix
/// server's Stats). Owned by a ThreadContext (bumped contention-free by
/// the owning thread) or by the runtime (writer-side events).
struct StatCounters {
  std::atomic<std::uint64_t> acquisitions{0};
  std::atomic<std::uint64_t> contended_acquisitions{0};
  std::atomic<std::uint64_t> avoidance_suspensions{0};
  std::atomic<std::uint64_t> yield_cycle_overrides{0};
  std::atomic<std::uint64_t> deadlocks_detected{0};
  std::atomic<std::uint64_t> signatures_learned{0};
  std::atomic<std::uint64_t> local_generalizations{0};
  std::atomic<std::uint64_t> false_positives_flagged{0};
  std::atomic<std::uint64_t> fast_path_acquisitions{0};
  std::atomic<std::uint64_t> fast_path_releases{0};
  std::atomic<std::uint64_t> slow_path_entries{0};
  std::atomic<std::uint64_t> wait_rounds{0};
  std::atomic<std::uint64_t> handoffs{0};
  std::atomic<std::uint64_t> barges_prevented{0};
  std::atomic<std::uint64_t> instantiation_scans{0};
  std::atomic<std::uint64_t> scans_skipped{0};
  std::atomic<std::uint64_t> sampled_verification_scans{0};
  std::atomic<std::uint64_t> adaptive_gate_mismatches{0};
  std::atomic<std::uint64_t> index_republishes{0};
  std::atomic<std::uint64_t> index_delta_rebuilds{0};
  std::atomic<std::uint64_t> index_full_rebuilds{0};
  std::atomic<std::uint64_t> index_entries_reused{0};
  std::atomic<std::uint64_t> threads_reaped{0};

  /// Adds this shard into `out` (relaxed loads; exact once the shard's
  /// owner has quiesced, which GetStats arranges by summing under the
  /// runtime lock).
  void AccumulateInto(RuntimeStats& out) const {
    out.acquisitions += acquisitions.load(std::memory_order_relaxed);
    out.contended_acquisitions +=
        contended_acquisitions.load(std::memory_order_relaxed);
    out.avoidance_suspensions +=
        avoidance_suspensions.load(std::memory_order_relaxed);
    out.yield_cycle_overrides +=
        yield_cycle_overrides.load(std::memory_order_relaxed);
    out.deadlocks_detected +=
        deadlocks_detected.load(std::memory_order_relaxed);
    out.signatures_learned +=
        signatures_learned.load(std::memory_order_relaxed);
    out.local_generalizations +=
        local_generalizations.load(std::memory_order_relaxed);
    out.false_positives_flagged +=
        false_positives_flagged.load(std::memory_order_relaxed);
    out.fast_path_acquisitions +=
        fast_path_acquisitions.load(std::memory_order_relaxed);
    out.fast_path_releases +=
        fast_path_releases.load(std::memory_order_relaxed);
    out.slow_path_entries += slow_path_entries.load(std::memory_order_relaxed);
    out.wait_rounds += wait_rounds.load(std::memory_order_relaxed);
    out.handoffs += handoffs.load(std::memory_order_relaxed);
    out.barges_prevented += barges_prevented.load(std::memory_order_relaxed);
    out.instantiation_scans +=
        instantiation_scans.load(std::memory_order_relaxed);
    out.scans_skipped += scans_skipped.load(std::memory_order_relaxed);
    out.sampled_verification_scans +=
        sampled_verification_scans.load(std::memory_order_relaxed);
    out.adaptive_gate_mismatches +=
        adaptive_gate_mismatches.load(std::memory_order_relaxed);
    out.index_republishes += index_republishes.load(std::memory_order_relaxed);
    out.index_delta_rebuilds +=
        index_delta_rebuilds.load(std::memory_order_relaxed);
    out.index_full_rebuilds +=
        index_full_rebuilds.load(std::memory_order_relaxed);
    out.index_entries_reused +=
        index_entries_reused.load(std::memory_order_relaxed);
    out.threads_reaped += threads_reaped.load(std::memory_order_relaxed);
  }

  /// Folds another shard into this one (tombstone reap path; both shards
  /// quiescent under the runtime lock).
  void Absorb(const StatCounters& other) {
    RuntimeStats tmp;
    other.AccumulateInto(tmp);
    acquisitions.fetch_add(tmp.acquisitions, std::memory_order_relaxed);
    contended_acquisitions.fetch_add(tmp.contended_acquisitions,
                                     std::memory_order_relaxed);
    avoidance_suspensions.fetch_add(tmp.avoidance_suspensions,
                                    std::memory_order_relaxed);
    yield_cycle_overrides.fetch_add(tmp.yield_cycle_overrides,
                                    std::memory_order_relaxed);
    deadlocks_detected.fetch_add(tmp.deadlocks_detected,
                                 std::memory_order_relaxed);
    signatures_learned.fetch_add(tmp.signatures_learned,
                                 std::memory_order_relaxed);
    local_generalizations.fetch_add(tmp.local_generalizations,
                                    std::memory_order_relaxed);
    false_positives_flagged.fetch_add(tmp.false_positives_flagged,
                                      std::memory_order_relaxed);
    fast_path_acquisitions.fetch_add(tmp.fast_path_acquisitions,
                                     std::memory_order_relaxed);
    fast_path_releases.fetch_add(tmp.fast_path_releases,
                                 std::memory_order_relaxed);
    slow_path_entries.fetch_add(tmp.slow_path_entries,
                                std::memory_order_relaxed);
    wait_rounds.fetch_add(tmp.wait_rounds, std::memory_order_relaxed);
    handoffs.fetch_add(tmp.handoffs, std::memory_order_relaxed);
    barges_prevented.fetch_add(tmp.barges_prevented,
                               std::memory_order_relaxed);
    instantiation_scans.fetch_add(tmp.instantiation_scans,
                                  std::memory_order_relaxed);
    scans_skipped.fetch_add(tmp.scans_skipped, std::memory_order_relaxed);
    sampled_verification_scans.fetch_add(tmp.sampled_verification_scans,
                                         std::memory_order_relaxed);
    adaptive_gate_mismatches.fetch_add(tmp.adaptive_gate_mismatches,
                                       std::memory_order_relaxed);
    index_republishes.fetch_add(tmp.index_republishes,
                                std::memory_order_relaxed);
    index_delta_rebuilds.fetch_add(tmp.index_delta_rebuilds,
                                   std::memory_order_relaxed);
    index_full_rebuilds.fetch_add(tmp.index_full_rebuilds,
                                  std::memory_order_relaxed);
    index_entries_reused.fetch_add(tmp.index_entries_reused,
                                   std::memory_order_relaxed);
    threads_reaped.fetch_add(tmp.threads_reaped, std::memory_order_relaxed);
  }
};

}  // namespace communix::dimmunix
