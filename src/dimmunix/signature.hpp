// Deadlock signatures (§II-A, §III-D).
//
// A signature has one entry per deadlocked thread: the *outer* call stack
// (where the thread acquired the lock involved in the deadlock) and the
// *inner* call stack (where the thread was blocked when the deadlock
// formed). The top frames of the outer/inner stacks are the outer/inner
// lock statements; they uniquely delimit the deadlock *bug*, while the
// full stacks identify one *manifestation* of it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dimmunix/frame.hpp"
#include "util/serde.hpp"

namespace communix::dimmunix {

struct SignatureEntry {
  CallStack outer;
  CallStack inner;

  friend bool operator==(const SignatureEntry&, const SignatureEntry&) = default;
};

class Signature {
 public:
  Signature() = default;
  /// Canonicalizes entry order so signatures compare independently of the
  /// order threads were discovered in the cycle.
  explicit Signature(std::vector<SignatureEntry> entries);

  const std::vector<SignatureEntry>& entries() const { return entries_; }
  std::size_t num_threads() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Identity of the deadlock *bug*: hash of the (sorted) outer+inner top
  /// frames. Signatures of different manifestations of the same bug share
  /// a BugKey; the merge precondition of §III-D is BugKey equality.
  std::uint64_t BugKey() const { return bug_key_; }

  /// Identity of this exact signature content (stacks + hash metadata);
  /// used for de-duplication in the server DB, local repository, and
  /// history.
  std::uint64_t ContentId() const;

  /// Depth of the shallowest outer stack. The client-side validation
  /// rejects signatures with MinOuterDepth() < 5 (§III-C1).
  std::size_t MinOuterDepth() const;

  /// Merges two signatures of the same bug into their generalization: the
  /// per-position longest common suffixes (§III-D). Returns nullopt if
  /// the signatures have different BugKeys/sizes, or if `min_outer_depth`
  /// > 0 and the merged outer stacks would be shallower than it (the
  /// anti-DoS rule: remote merges must keep depth >= 5).
  static std::optional<Signature> Merge(const Signature& a, const Signature& b,
                                        std::size_t min_outer_depth);

  void Serialize(BinaryWriter& w) const;
  static std::optional<Signature> Deserialize(BinaryReader& r);
  std::vector<std::uint8_t> ToBytes() const;
  static std::optional<Signature> FromBytes(
      std::span<const std::uint8_t> bytes);

  std::string ToString() const;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.entries_ == b.entries_;
  }

 private:
  void Canonicalize();

  std::vector<SignatureEntry> entries_;
  std::uint64_t bug_key_ = 0;
};

}  // namespace communix::dimmunix
