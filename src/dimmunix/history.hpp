// Persistent deadlock history (§II-A).
//
// The history is the per-application store of deadlock signatures that
// Dimmunix's avoidance consults before every lock acquisition. Communix
// adds to it: the agent injects validated remote signatures and replaces
// entries when generalization merges them (§III-D).
//
// Thread-safety: History is not internally synchronized; the runtime
// serializes access under its own lock, and the agent runs at application
// startup before workload threads exist (mirroring the paper's design).
//
// The candidates-by-top-frame projection the avoidance hot path consults
// lives in AvoidanceIndex (an immutable snapshot delta-rebuilt per
// mutation), not here — History mutations are O(1)-ish instead of
// recopying an index per Disable/Replace.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dimmunix/signature.hpp"
#include "util/clock.hpp"
#include "util/status.hpp"

namespace communix::dimmunix {

enum class SignatureOrigin : std::uint8_t { kLocal = 0, kRemote = 1 };

struct SignatureRecord {
  Signature sig;
  SignatureOrigin origin = SignatureOrigin::kLocal;
  /// Set by the false-positive detector (§III-C1): the signature is kept
  /// but no longer avoided, pending the user's decision.
  bool disabled = false;
  TimePoint added_at = 0;
};

class History {
 public:
  /// Adds a signature; returns its index, or -1 if identical content is
  /// already present.
  int Add(Signature sig, SignatureOrigin origin, TimePoint now);

  /// Replaces the signature at `index` (generalization merge result).
  void Replace(std::size_t index, Signature sig);

  bool Disable(std::uint64_t content_id);
  bool ReEnable(std::uint64_t content_id);

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const SignatureRecord& record(std::size_t index) const {
    return records_.at(index);
  }
  const std::vector<SignatureRecord>& records() const { return records_; }

  bool ContainsContent(std::uint64_t content_id) const {
    return by_content_.count(content_id) > 0;
  }

  /// Indexes of signatures with the given bug identity.
  std::vector<std::size_t> FindByBugKey(std::uint64_t bug_key) const;

  /// Persistence: versioned binary file.
  Status SaveToFile(const std::string& path) const;
  static Result<History> LoadFromFile(const std::string& path);

  /// Drains the retired-content ledger: content ids this history stopped
  /// vouching for since the last drain — Replace() records the replaced
  /// signature's id (generalization superseded it), Disable() records the
  /// id on a fresh false→true transition (false positive). The agent
  /// ships one batched kMarkSuperseded frame per sync from this, instead
  /// of one server pass per event. Load/Add never feed the ledger: only
  /// in-process retirement does.
  std::vector<std::uint64_t> TakeRetiredContentIds();
  std::size_t retired_pending() const { return retired_content_ids_.size(); }

 private:
  std::vector<SignatureRecord> records_;
  std::unordered_map<std::uint64_t, std::size_t> by_content_;
  std::vector<std::uint64_t> retired_content_ids_;
};

}  // namespace communix::dimmunix
