#include "dimmunix/frame.hpp"

namespace communix::dimmunix {

CallStack CallStack::LongestCommonSuffix(const CallStack& a,
                                         const CallStack& b) {
  const auto& fa = a.frames();
  const auto& fb = b.frames();
  std::size_t n = 0;
  while (n < fa.size() && n < fb.size() &&
         fa[fa.size() - 1 - n] == fb[fb.size() - 1 - n]) {
    ++n;
  }
  std::vector<Frame> out(fa.end() - static_cast<std::ptrdiff_t>(n), fa.end());
  return CallStack(std::move(out));
}

std::string CallStack::ToString() const {
  std::string out;
  for (std::size_t i = frames_.size(); i-- > 0;) {
    out += "  at " + frames_[i].ToString() + "\n";
  }
  return out;
}

}  // namespace communix::dimmunix
