#include "dimmunix/signature.hpp"

#include <algorithm>

#include "util/fnv.hpp"

namespace communix::dimmunix {

namespace {

void SerializeStack(BinaryWriter& w, const CallStack& stack) {
  w.WriteU32(static_cast<std::uint32_t>(stack.depth()));
  for (const Frame& f : stack.frames()) {
    w.WriteString(f.class_name);
    w.WriteString(f.method);
    w.WriteU32(f.line);
    w.WriteU8(f.class_hash ? 1 : 0);
    if (f.class_hash) {
      w.WriteRaw(std::span<const std::uint8_t>(f.class_hash->data(),
                                               f.class_hash->size()));
    }
  }
}

std::optional<CallStack> DeserializeStack(BinaryReader& r) {
  const std::uint32_t depth = r.ReadU32();
  // Defensive cap: a frame takes >= 10 bytes, so a huge depth in a corrupt
  // buffer fails fast instead of allocating.
  if (!r.ok() || depth > 4096) return std::nullopt;
  std::vector<Frame> frames;
  frames.reserve(depth);
  for (std::uint32_t i = 0; i < depth; ++i) {
    Frame f;
    f.class_name = r.ReadString();
    f.method = r.ReadString();
    f.line = r.ReadU32();
    const bool has_hash = r.ReadU8() != 0;
    if (has_hash) {
      const auto raw = r.ReadRaw(32);
      if (raw.size() == 32) {
        Sha256Digest d;
        std::copy(raw.begin(), raw.end(), d.begin());
        f.class_hash = d;
      }
    }
    if (!r.ok()) return std::nullopt;
    f.RecomputeKey();
    frames.push_back(std::move(f));
  }
  return CallStack(std::move(frames));
}

}  // namespace

Signature::Signature(std::vector<SignatureEntry> entries)
    : entries_(std::move(entries)) {
  Canonicalize();
}

void Signature::Canonicalize() {
  std::sort(entries_.begin(), entries_.end(),
            [](const SignatureEntry& a, const SignatureEntry& b) {
              if (a.outer.TopKey() != b.outer.TopKey()) {
                return a.outer.TopKey() < b.outer.TopKey();
              }
              if (a.inner.TopKey() != b.inner.TopKey()) {
                return a.inner.TopKey() < b.inner.TopKey();
              }
              if (a.outer.StackKey() != b.outer.StackKey()) {
                return a.outer.StackKey() < b.outer.StackKey();
              }
              return a.inner.StackKey() < b.inner.StackKey();
            });
  // Bug identity: fold of sorted (outer top, inner top) pairs.
  std::uint64_t h = kFnvOffsetBasis;
  for (const SignatureEntry& e : entries_) {
    h = HashCombine(h, HashCombine(e.outer.TopKey(), e.inner.TopKey()));
  }
  bug_key_ = h;
}

std::uint64_t Signature::ContentId() const {
  const auto bytes = ToBytes();
  return Fnv1a(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
}

std::size_t Signature::MinOuterDepth() const {
  std::size_t d = SIZE_MAX;
  for (const SignatureEntry& e : entries_) {
    d = std::min(d, e.outer.depth());
  }
  return entries_.empty() ? 0 : d;
}

std::optional<Signature> Signature::Merge(const Signature& a,
                                          const Signature& b,
                                          std::size_t min_outer_depth) {
  if (a.BugKey() != b.BugKey() || a.num_threads() != b.num_threads()) {
    return std::nullopt;
  }
  // Entries are canonically ordered by top-frame keys, so positions align.
  std::vector<SignatureEntry> merged;
  merged.reserve(a.num_threads());
  for (std::size_t i = 0; i < a.num_threads(); ++i) {
    SignatureEntry e;
    e.outer = CallStack::LongestCommonSuffix(a.entries_[i].outer,
                                             b.entries_[i].outer);
    e.inner = CallStack::LongestCommonSuffix(a.entries_[i].inner,
                                             b.entries_[i].inner);
    // The common suffix always contains at least the identical top frame.
    if (e.outer.empty() || e.inner.empty()) return std::nullopt;
    if (min_outer_depth > 0 && e.outer.depth() < min_outer_depth) {
      return std::nullopt;
    }
    merged.push_back(std::move(e));
  }
  return Signature(std::move(merged));
}

void Signature::Serialize(BinaryWriter& w) const {
  w.WriteU32(static_cast<std::uint32_t>(entries_.size()));
  for (const SignatureEntry& e : entries_) {
    SerializeStack(w, e.outer);
    SerializeStack(w, e.inner);
  }
}

std::optional<Signature> Signature::Deserialize(BinaryReader& r) {
  const std::uint32_t n = r.ReadU32();
  if (!r.ok() || n == 0 || n > 64) return std::nullopt;
  std::vector<SignatureEntry> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto outer = DeserializeStack(r);
    auto inner = DeserializeStack(r);
    if (!outer || !inner) return std::nullopt;
    entries.push_back(SignatureEntry{std::move(*outer), std::move(*inner)});
  }
  return Signature(std::move(entries));
}

std::vector<std::uint8_t> Signature::ToBytes() const {
  BinaryWriter w;
  Serialize(w);
  return w.take();
}

std::optional<Signature> Signature::FromBytes(
    std::span<const std::uint8_t> bytes) {
  BinaryReader r(bytes);
  auto sig = Deserialize(r);
  if (!sig || !r.AtEnd()) return std::nullopt;
  return sig;
}

std::string Signature::ToString() const {
  std::string out = "Signature{bug=" + std::to_string(bug_key_) + "\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out += " thread " + std::to_string(i) + " outer:\n" +
           entries_[i].outer.ToString();
    out += " thread " + std::to_string(i) + " inner:\n" +
           entries_[i].inner.ToString();
  }
  out += "}";
  return out;
}

}  // namespace communix::dimmunix
