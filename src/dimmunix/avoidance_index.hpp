// Immutable, snapshot-published avoidance index.
//
// The avoidance decision in DimmunixRuntime::Acquire needs one question
// answered on *every* lock acquisition: "could this call stack's top
// frame complete an instantiation of any enabled history signature?"
// For the overwhelming majority of acquisitions the answer is no — the
// paper's whole deployability argument rests on those acquisitions
// staying near-native speed. Consulting the History under the runtime
// mutex made every acquisition pay for the rare positive answer.
//
// AvoidanceIndex is the read-optimized projection of the History that
// the hot path consults instead: the enabled signatures (copies — the
// index must not dangle when History::Replace reallocates records), a
// candidates-by-top-frame-key map, and the history version it was built
// from. An index is immutable after Build; the runtime publishes it via
// std::atomic<std::shared_ptr<const AvoidanceIndex>> (RCU-style), so
// readers take a reference-counted snapshot without ever blocking, and
// every writer (detection-time learning, agent injection, FP
// auto-disable, Replace merges) rebuilds and re-publishes under the
// runtime lock. Rebuild cost is O(history), paid only on the rare
// history mutation; lookup cost is one hash probe.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dimmunix/history.hpp"
#include "dimmunix/signature.hpp"

namespace communix::dimmunix {

class AvoidanceIndex {
 public:
  /// One (signature, outer-stack position) pair whose outer top frame is
  /// the probed key. `ordinal` indexes into the index's own entry table,
  /// NOT into History (disabled records are not carried over).
  struct Candidate {
    std::uint32_t ordinal;
    std::uint32_t position;
  };

  struct Entry {
    Signature sig;
    std::uint64_t content_id = 0;
  };

  /// Builds the index of `history`'s *enabled* signatures, stamped with
  /// the given history version.
  static std::shared_ptr<const AvoidanceIndex> Build(const History& history,
                                                     std::uint64_t version);

  /// Candidates whose outer top frame key is `top_key`; nullptr if none.
  /// This is the only call the acquisition fast path makes.
  const std::vector<Candidate>* CandidatesForTopFrame(
      std::uint64_t top_key) const {
    auto it = by_outer_top_.find(top_key);
    if (it == by_outer_top_.end()) return nullptr;
    return &it->second;
  }

  const Entry& entry(std::size_t ordinal) const { return entries_[ordinal]; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// History version this snapshot reflects.
  std::uint64_t version() const { return version_; }

 private:
  AvoidanceIndex() = default;

  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::vector<Candidate>> by_outer_top_;
  std::uint64_t version_ = 0;
};

}  // namespace communix::dimmunix
