// Adaptive, incrementally-maintained avoidance index.
//
// The avoidance decision in DimmunixRuntime::Acquire needs one question
// answered on *every* lock acquisition: "could this call stack's top
// frame complete an instantiation of any enabled history signature?"
// For the overwhelming majority of acquisitions the answer is no — the
// paper's whole deployability argument rests on those acquisitions
// staying near-native speed.
//
// AvoidanceIndex is the read-optimized projection of the History the hot
// path consults: per top-frame key, the (signature, position) candidates
// whose outer stack ends at that lock statement. A snapshot is immutable
// after construction and published via
// std::atomic<std::shared_ptr<const AvoidanceIndex>> (RCU-style), so
// readers never block. Two additions over the original PR-2 design:
//
//  * Delta rebuilds. Writers no longer deep-copy every signature on each
//    mutation: Rebuild(prev, history) reuses the previous snapshot's
//    immutable Entry objects (shared_ptr) for records whose content is
//    unchanged and copies only the mutated ones, renumbering ordinals.
//    (The rebuild still walks the history to regenerate the candidate
//    map and per-key metadata — O(index structure) pointer-level work;
//    what the delta elides is the signature payload copies, the
//    dominant cost of a full build.) The runtime interleaves a periodic
//    full Build as a safety net; a property test asserts delta and full
//    builds are observationally identical over random mutation
//    sequences.
//
//  * Adaptive per-key state. Each key slot carries the deduplicated
//    occupancy buckets of its *peer* positions (the top-frame keys of
//    every other entry of every candidate signature) plus mutable skip/
//    scan telemetry. The runtime's adaptive gate skips the instantiation
//    scan when all peer buckets are unoccupied — a candidate signature
//    can only instantiate if some other thread currently holds or is
//    blocked at a lock whose stack matches one of the other positions,
//    and such a stack's top frame hashes into one of those buckets, so
//    an all-zero read proves the scan would return empty. Telemetry is
//    carried across delta rebuilds when a key's candidate content is
//    unchanged (fingerprint match) and reset when it changes — the
//    "re-arm eagerly" rule for index mutations; occupant-set changes
//    need no re-arm at all because the gate reads live bucket counters.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dimmunix/history.hpp"
#include "dimmunix/signature.hpp"

namespace communix::dimmunix {

/// Striped occupancy counters, keyed by top-frame key. Every published
/// occupancy (a held monitor's acquisition stack, a fast-path pending
/// slot, a slow-path block announcement) increments the bucket of its
/// stack's top-frame key *before* becoming visible to instantiation
/// scans and decrements it only *after* being retracted, so a zero read
/// proves no matching occupant is visible (hash collisions only cause
/// extra scans, never missed ones). Counter ops are seq_cst: if the
/// adaptive gate's zero-read precedes an occupant's increment in the
/// total order, the skipped acquisition linearizes before that
/// occupant's — exactly the serialization the fast path's pending-slot
/// protocol already grants, so the global-lock reference admits it too.
///
/// The table width is configurable (power of two): collisions between a
/// signature's peer keys and unrelated hot keys cost skipped skips, so a
/// busy deployment sizes the table from its candidate-key count
/// (RecommendedBuckets; the runtime's auto mode applies it at index
/// build, while resizing is still provably safe). The width is fixed
/// once occupancies exist — entries cache their bucket index, so a live
/// resize would orphan them.
class OccupancyTable {
 public:
  static constexpr std::size_t kDefaultBuckets = 1024;
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

  /// Rounds `buckets` to the nearest power of two in [kMin, kMax].
  static std::size_t ClampBuckets(std::size_t buckets);

  /// Width for a deployment whose index holds `candidate_keys` distinct
  /// top-frame keys: ~8 buckets per key (collision probability per hot
  /// key ~n/8n), floored at the default width.
  static std::size_t RecommendedBuckets(std::size_t candidate_keys);

  explicit OccupancyTable(std::size_t buckets = kDefaultBuckets);

  /// Bucket of a top-frame key (already FNV-mixed by Frame) in a table
  /// of `buckets` slots (power of two).
  static std::uint32_t BucketOf(std::uint64_t top_key, std::size_t buckets) {
    return static_cast<std::uint32_t>((top_key ^ (top_key >> 32)) &
                                      (buckets - 1));
  }
  std::uint32_t Bucket(std::uint64_t top_key) const {
    return BucketOf(top_key, bucket_count_);
  }
  std::size_t bucket_count() const { return bucket_count_; }

  /// Replaces the counter array with a wider one. NOT thread-safe: the
  /// caller must guarantee no occupancy is live and no thread can
  /// publish one concurrently (the runtime resizes only while no thread
  /// is attached, which implies both).
  void Resize(std::size_t buckets);

  void Enter(std::uint32_t bucket) {
    counts_[bucket].fetch_add(1, std::memory_order_seq_cst);
  }
  void Leave(std::uint32_t bucket) {
    counts_[bucket].fetch_sub(1, std::memory_order_seq_cst);
  }

  bool AnyOccupied(const std::vector<std::uint32_t>& buckets) const {
    for (const std::uint32_t b : buckets) {
      if (counts_[b].load(std::memory_order_seq_cst) != 0) return true;
    }
    return false;
  }

  std::uint32_t Count(std::uint32_t bucket) const {  // introspection/tests
    return counts_[bucket].load(std::memory_order_seq_cst);
  }

 private:
  std::size_t bucket_count_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> counts_;
};

class AvoidanceIndex {
 public:
  /// One (signature, outer-stack position) pair whose outer top frame is
  /// the probed key. `ordinal` indexes into the index's own entry table,
  /// NOT into History (disabled records are not carried over).
  struct Candidate {
    std::uint32_t ordinal;
    std::uint32_t position;
  };

  /// Immutable signature copy shared between successive delta-rebuilt
  /// snapshots (the index must not dangle when History::Replace
  /// reallocates records, and delta rebuilds must not re-copy it).
  struct Entry {
    Signature sig;
    std::uint64_t content_id = 0;
  };

  /// Mutable adaptive telemetry for one key. Guarded by the runtime
  /// mutex (the gate runs only on the slow path); shared across delta
  /// rebuilds while the key's candidate content is unchanged.
  struct KeyStats {
    std::uint64_t scans = 0;           // instantiation scans executed
    std::uint64_t instantiations = 0;  // scans that found an occupant set
    /// Gate evaluations that proved the scan empty (no occupied peer
    /// bucket). Drives the 1-in-N verification sampling; all but the
    /// sampled evaluations skipped the scan outright.
    std::uint64_t gate_hits = 0;
    std::uint64_t verify_scans = 0;    // sampled gate-verification scans
  };

  struct KeySlot {
    std::vector<Candidate> candidates;
    /// Deduplicated occupancy buckets of every other position of every
    /// candidate signature — the adaptive gate's read set.
    std::vector<std::uint32_t> peer_buckets;
    /// Hash of the candidate (content_id, position) sequence; equal
    /// fingerprints across rebuilds let the slot keep its stats.
    std::uint64_t fingerprint = 0;
    std::shared_ptr<KeyStats> stats;
  };

  /// Builds the index of `history`'s *enabled* signatures from scratch,
  /// stamped with the given history version. `occupancy_buckets` is the
  /// width of the runtime's OccupancyTable — peer buckets are computed
  /// against it, so the two must agree.
  static std::shared_ptr<const AvoidanceIndex> Build(
      const History& history, std::uint64_t version,
      std::size_t occupancy_buckets = OccupancyTable::kDefaultBuckets);

  /// Delta rebuild: derives the next snapshot from `prev` plus whatever
  /// mutation `history` now reflects. Entries whose content id survived
  /// are reused (no signature deep copy); key slots whose candidate
  /// content is unchanged keep their adaptive stats. Observationally
  /// identical to Build(history, version).
  static std::shared_ptr<const AvoidanceIndex> Rebuild(
      const AvoidanceIndex& prev, const History& history,
      std::uint64_t version,
      std::size_t occupancy_buckets = OccupancyTable::kDefaultBuckets);

  /// Candidates whose outer top frame key is `top_key`; nullptr if none.
  /// This is the only call the acquisition fast path makes.
  const std::vector<Candidate>* CandidatesForTopFrame(
      std::uint64_t top_key) const {
    const KeySlot* slot = SlotForTopFrame(top_key);
    return slot == nullptr ? nullptr : &slot->candidates;
  }

  /// Full key slot (candidates + adaptive state); nullptr if none.
  const KeySlot* SlotForTopFrame(std::uint64_t top_key) const {
    auto it = by_outer_top_.find(top_key);
    if (it == by_outer_top_.end()) return nullptr;
    return &it->second;
  }

  const Entry& entry(std::size_t ordinal) const { return *entries_[ordinal]; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// History version this snapshot reflects.
  std::uint64_t version() const { return version_; }

  /// Delta-rebuild provenance (full builds report 0 reused).
  bool built_by_delta() const { return built_by_delta_; }
  std::size_t entries_reused() const { return entries_reused_; }
  std::size_t entries_copied() const { return entries_copied_; }

  /// Distinct top-frame keys in the index (candidate-key count — the
  /// input to OccupancyTable::RecommendedBuckets).
  std::size_t key_count() const { return by_outer_top_.size(); }
  /// Distinct key pairs sharing an occupancy bucket at this build's
  /// table width — each costs spurious gate hits (lost skips) whenever
  /// the colliding key is occupied. Surfaced as a Stats gauge; a rising
  /// value is the signal to widen Options::occupancy_buckets.
  std::size_t key_bucket_collisions() const { return key_bucket_collisions_; }

 private:
  AvoidanceIndex() = default;

  static std::shared_ptr<const AvoidanceIndex> BuildInternal(
      const History& history, std::uint64_t version,
      const AvoidanceIndex* prev, std::size_t occupancy_buckets);

  std::vector<std::shared_ptr<const Entry>> entries_;
  std::unordered_map<std::uint64_t, KeySlot> by_outer_top_;
  std::uint64_t version_ = 0;
  bool built_by_delta_ = false;
  std::size_t entries_reused_ = 0;
  std::size_t entries_copied_ = 0;
  std::size_t key_bucket_collisions_ = 0;
};

/// Distinct outer top-frame keys over `history`'s enabled records — the
/// candidate-key count the runtime's auto occupancy sizing consults
/// *before* building the index (the table width feeds the build).
std::size_t CountCandidateKeys(const History& history);

}  // namespace communix::dimmunix
