#include "dimmunix/fp_detector.hpp"

namespace communix::dimmunix {

bool FpDetector::RecordInstantiation(std::uint64_t content_id, TimePoint now) {
  PerSignature& s = sigs_[content_id];
  ++s.count_since_tp;

  s.recent.push_back(now);
  while (!s.recent.empty() && s.recent.front() < now - options_.burst_window) {
    s.recent.pop_front();
  }
  if (s.recent.size() > options_.burst_threshold) s.burst_seen = true;

  if (!s.flagged && s.burst_seen &&
      s.count_since_tp >= options_.instantiation_threshold) {
    s.flagged = true;
    return true;
  }
  return false;
}

void FpDetector::RecordTruePositive(std::uint64_t content_id) {
  PerSignature& s = sigs_[content_id];
  s.count_since_tp = 0;
  s.burst_seen = false;
  s.flagged = false;
  s.recent.clear();
}

bool FpDetector::IsSuspected(std::uint64_t content_id) const {
  auto it = sigs_.find(content_id);
  return it != sigs_.end() && it->second.flagged;
}

std::uint64_t FpDetector::InstantiationCount(std::uint64_t content_id) const {
  auto it = sigs_.find(content_id);
  return it == sigs_.end() ? 0 : it->second.count_since_tp;
}

}  // namespace communix::dimmunix
