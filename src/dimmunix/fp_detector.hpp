// False-positive detector (§III-C1).
//
// Avoidance can over-serialize: a signature that keeps firing but never
// corresponds to a real deadlock ("no true positive") degrades
// functionality and performance. The paper's rule: if a signature S has
// seen >= 100 instantiations with no true positive, and there was at
// least one 1-second interval with more than 10 instantiations, warn the
// user about S. A *true positive* is recorded when deadlock detection
// fires for S's bug (the avoidance evidently guards a real deadlock).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "util/clock.hpp"

namespace communix::dimmunix {

class FpDetector {
 public:
  struct Options {
    std::uint64_t instantiation_threshold = 100;
    std::uint64_t burst_threshold = 10;  // "> 10 instantiations"
    TimePoint burst_window = kNanosPerSecond;
  };

  FpDetector() : FpDetector(Options{}) {}
  explicit FpDetector(Options options) : options_(options) {}

  /// Records one avoidance instantiation of the signature with the given
  /// content id. Returns true iff this event *newly* flags the signature
  /// as a suspected false positive.
  bool RecordInstantiation(std::uint64_t content_id, TimePoint now);

  /// Records a true positive for the signature (resets its suspicion).
  void RecordTruePositive(std::uint64_t content_id);

  bool IsSuspected(std::uint64_t content_id) const;
  std::uint64_t InstantiationCount(std::uint64_t content_id) const;

 private:
  struct PerSignature {
    std::uint64_t count_since_tp = 0;
    bool burst_seen = false;
    bool flagged = false;
    std::deque<TimePoint> recent;  // events within the burst window
  };

  Options options_;
  std::unordered_map<std::uint64_t, PerSignature> sigs_;
};

}  // namespace communix::dimmunix
