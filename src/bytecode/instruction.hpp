// Instruction set of the bytecode substrate.
//
// The paper's client-side validation analyzes Java bytecode with Soot
// (§III-C3): it builds CFGs, walks them from each `monitorenter`, and
// classifies synchronized blocks as nested/non-nested. We reproduce the
// minimum instruction vocabulary that analysis needs. `kCompute` stands
// for any run of non-synchronization, non-call bytecode.
#pragma once

#include <cstdint>

namespace communix::bytecode {

enum class Opcode : std::uint8_t {
  kCompute = 0,        // arbitrary straight-line work
  kMonitorEnter = 1,   // begin synchronized block (operand = lock-site id)
  kMonitorExit = 2,    // end synchronized block (operand = lock-site id)
  kInvoke = 3,         // call (operand = callee MethodId)
  kBranch = 4,         // conditional jump (operand = target index; falls through too)
  kGoto = 5,           // unconditional jump (operand = target index)
  kReturn = 6,         // method exit
  kExplicitLock = 7,   // ReentrantLock.lock()  (ignored by Communix, §III-C1)
  kExplicitUnlock = 8, // ReentrantLock.unlock()
};

/// One bytecode instruction. `line` is the source line, used to build
/// call-stack frames (frames are class.method:line triples, §III-C3).
struct Instruction {
  Opcode op = Opcode::kCompute;
  std::int32_t operand = -1;
  std::uint32_t line = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

}  // namespace communix::bytecode
