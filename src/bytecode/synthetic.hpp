// Synthetic application generator.
//
// The paper evaluates on JBoss, Limewire, Vuze, Eclipse and MySQL-JDBC —
// real Java applications we cannot ship. What the evaluation actually
// depends on is their *structure*: lines of code, number of synchronized
// blocks/methods, how many are nested, how many Soot could analyze
// (Table I), and how deep the call stacks under locks are. This generator
// produces programs with exactly those target statistics from a seed, so
// every table/figure can be regenerated deterministically.
//
// Layout of a generated app:
//  - `hosts`: methods containing one top-level synchronized block each.
//    Nested hosts invoke a synchronized helper inside the block; the rest
//    close the block without further synchronization.
//  - `helpers`: small methods whose whole body is a synchronized block
//    (the AspectJ view of a synchronized method, §III-C3).
//  - `drivers`: call chains d0 -> d1 -> ... -> host, giving the deep call
//    stacks (depth > 10, §III-C1) real applications exhibit.
//  - plain compute methods pad the program to the LOC target; a subset
//    carries ReentrantLock-style explicit lock/unlock ops, which Communix
//    ignores by design (§III-C1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/program.hpp"
#include "util/rng.hpp"

namespace communix::bytecode {

/// Target statistics for a generated application (Table I's columns).
struct SyntheticSpec {
  std::string name = "app";
  std::uint64_t target_loc = 100'000;
  /// Total synchronized blocks/methods ("Sync bl/meths").
  std::size_t sync_blocks = 500;
  /// How many of them live in methods Soot can analyze ("(Analyzed)").
  std::size_t analyzable_sync_blocks = 250;
  /// How many analyzable ones are nested ("Nested").
  std::size_t nested_sync_blocks = 60;
  /// Calls to ReentrantLock.lock/unlock ("Explicit sync ops").
  std::size_t explicit_sync_ops = 50;
  /// Number of synchronized helper methods shared by nested hosts.
  std::size_t sync_helpers = 8;
  /// Length of driver call chains feeding each host (call-stack depth).
  std::size_t driver_chain_length = 10;
  std::size_t classes = 100;
  std::uint64_t seed = 1;
};

/// A generated application plus the metadata experiments need.
struct SyntheticApp {
  Program program;
  SyntheticSpec spec;
  /// Lock sites of nested (analyzable) hosts — the attacker's target set.
  std::vector<std::int32_t> nested_sites;
  /// Lock sites of non-nested analyzable hosts.
  std::vector<std::int32_t> non_nested_sites;
  /// Lock sites inside unanalyzable methods.
  std::vector<std::int32_t> unanalyzable_sites;
  /// Lock sites of the synchronized helpers.
  std::vector<std::int32_t> helper_sites;
  /// For each host lock site, the driver chain (outermost first) whose
  /// last element invokes the host method. Used to synthesize realistic
  /// call stacks that end at the site.
  std::vector<std::vector<MethodId>> driver_chains;
  /// host index by lock-site id (into driver_chains).
  std::vector<std::int32_t> chain_of_site;

  /// Method owning a given lock site.
  MethodId SiteMethod(std::int32_t site) const {
    return program.lock_site(site).method_id;
  }
};

/// Generates an application matching `spec` (deterministic in spec.seed).
SyntheticApp GenerateApp(const SyntheticSpec& spec);

/// Named profiles matching Table I / Table II applications.
SyntheticSpec JBossProfile();
SyntheticSpec LimewireProfile();
SyntheticSpec VuzeProfile();
SyntheticSpec EclipseProfile();
SyntheticSpec MySqlJdbcProfile();

}  // namespace communix::bytecode
