#include "bytecode/cfg.hpp"

namespace communix::bytecode {

Cfg::Cfg(const Program& program, MethodId method) {
  const auto& body = program.method(method).body;
  const std::size_t n = body.size();
  successors_.resize(n);

  auto add_edge = [&](std::size_t from, std::int64_t to) {
    if (to >= 0 && static_cast<std::size_t>(to) < n) {
      successors_[from].push_back(static_cast<std::size_t>(to));
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    switch (body[i].op) {
      case Opcode::kReturn:
        break;  // no successors
      case Opcode::kGoto:
        add_edge(i, body[i].operand);
        break;
      case Opcode::kBranch:
        add_edge(i, static_cast<std::int64_t>(i) + 1);  // fall-through
        add_edge(i, body[i].operand);
        break;
      default:
        add_edge(i, static_cast<std::int64_t>(i) + 1);
        break;
    }
  }
}

}  // namespace communix::bytecode
