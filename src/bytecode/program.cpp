#include "bytecode/program.hpp"

#include <algorithm>

#include "util/serde.hpp"

namespace communix::bytecode {

ClassId Program::AddClass(std::string name) {
  const ClassId id = static_cast<ClassId>(classes_.size());
  class_by_name_.emplace(name, id);
  classes_.push_back(Klass{id, std::move(name), {}});
  hash_cache_.emplace_back();
  return id;
}

MethodId Program::AddMethod(ClassId class_id, std::string name,
                            bool is_synchronized) {
  const MethodId id = static_cast<MethodId>(methods_.size());
  Method m;
  m.id = id;
  m.class_id = class_id;
  m.name = std::move(name);
  m.is_synchronized = is_synchronized;
  methods_.push_back(std::move(m));
  classes_.at(class_id).methods.push_back(id);
  return id;
}

std::size_t Program::Emit(MethodId method, Instruction insn) {
  auto& body = methods_.at(method).body;
  body.push_back(insn);
  return body.size() - 1;
}

std::int32_t Program::AddLockSite(ClassId class_id, MethodId method_id,
                                  std::uint32_t line) {
  const std::int32_t id = static_cast<std::int32_t>(sites_.size());
  sites_.push_back(LockSite{id, class_id, method_id, line});
  return id;
}

std::optional<ClassId> Program::FindClass(const std::string& name) const {
  auto it = class_by_name_.find(name);
  if (it == class_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<MethodId> Program::FindMethod(
    const std::string& class_name, const std::string& method_name) const {
  const auto cid = FindClass(class_name);
  if (!cid) return std::nullopt;
  for (MethodId mid : classes_.at(*cid).methods) {
    if (methods_.at(mid).name == method_name) return mid;
  }
  return std::nullopt;
}

std::vector<std::uint8_t> Program::SerializeClass(ClassId id) const {
  const Klass& k = classes_.at(id);
  BinaryWriter w;
  w.WriteString(k.name);
  w.WriteU32(static_cast<std::uint32_t>(k.methods.size()));
  for (MethodId mid : k.methods) {
    const Method& m = methods_.at(mid);
    w.WriteString(m.name);
    w.WriteU8(m.is_synchronized ? 1 : 0);
    w.WriteU32(static_cast<std::uint32_t>(m.body.size()));
    for (const Instruction& insn : m.body) {
      w.WriteU8(static_cast<std::uint8_t>(insn.op));
      w.WriteU32(static_cast<std::uint32_t>(insn.operand));
      w.WriteU32(insn.line);
    }
  }
  return w.take();
}

const Sha256Digest& Program::ClassHash(ClassId id) const {
  auto& slot = hash_cache_.at(id);
  if (!slot) {
    const auto bytes = SerializeClass(id);
    slot = Sha256::Hash(
        std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  }
  return *slot;
}

std::optional<Sha256Digest> Program::ClassHashByName(
    const std::string& name) const {
  const auto cid = FindClass(name);
  if (!cid) return std::nullopt;
  return ClassHash(*cid);
}

std::uint64_t Program::TotalLines() const {
  std::uint64_t total = 0;
  for (const Method& m : methods_) {
    std::uint32_t max_line = 0;
    for (const Instruction& insn : m.body) {
      max_line = std::max(max_line, insn.line);
    }
    total += max_line;
  }
  return total;
}

Program::Stats Program::ComputeStats() const {
  Stats s;
  s.loc = TotalLines();
  for (const Method& m : methods_) {
    if (m.is_synchronized) ++s.sync_blocks_and_methods;
    for (const Instruction& insn : m.body) {
      if (insn.op == Opcode::kMonitorEnter) ++s.sync_blocks_and_methods;
      if (insn.op == Opcode::kExplicitLock ||
          insn.op == Opcode::kExplicitUnlock) {
        ++s.explicit_sync_ops;
      }
    }
  }
  return s;
}

}  // namespace communix::bytecode
