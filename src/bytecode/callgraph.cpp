#include "bytecode/callgraph.hpp"

#include <algorithm>
#include <deque>

namespace communix::bytecode {

CallGraph::CallGraph(const Program& program) {
  const std::size_t n = program.num_methods();
  callees_.resize(n);
  may_sync_.assign(n, false);

  // callers[m] = methods that invoke m; seeds = methods that synchronize
  // directly (or are unanalyzable, handled conservatively).
  std::vector<std::vector<MethodId>> callers(n);
  std::deque<MethodId> worklist;

  for (std::size_t m = 0; m < n; ++m) {
    const Method& method = program.method(static_cast<MethodId>(m));
    bool direct_sync = method.is_synchronized || !method.analyzable;
    for (const Instruction& insn : method.body) {
      if (insn.op == Opcode::kMonitorEnter) direct_sync = true;
      if (insn.op == Opcode::kInvoke && insn.operand >= 0 &&
          static_cast<std::size_t>(insn.operand) < n) {
        callees_[m].push_back(insn.operand);
        callers[insn.operand].push_back(static_cast<MethodId>(m));
      }
    }
    auto& c = callees_[m];
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    if (direct_sync) {
      may_sync_[m] = true;
      worklist.push_back(static_cast<MethodId>(m));
    }
  }

  // Propagate backwards: a caller of a may-sync method may sync.
  while (!worklist.empty()) {
    const MethodId m = worklist.front();
    worklist.pop_front();
    for (MethodId caller : callers[m]) {
      if (!may_sync_[caller]) {
        may_sync_[caller] = true;
        worklist.push_back(caller);
      }
    }
  }
}

}  // namespace communix::bytecode
