// Call graph and "may execute synchronization" reachability.
//
// The nesting analysis needs, at every call site, whether any method
// reachable (directly or indirectly) from the callee is synchronized or
// contains a synchronized block (§III-C3). We build the static call graph
// from kInvoke operands and precompute that predicate for every method
// with one reverse-reachability pass.
#pragma once

#include <vector>

#include "bytecode/program.hpp"

namespace communix::bytecode {

class CallGraph {
 public:
  explicit CallGraph(const Program& program);

  /// Direct callees of `method` (deduplicated).
  const std::vector<MethodId>& callees(MethodId method) const {
    return callees_.at(method);
  }

  /// True iff `method` itself is synchronized, contains a monitorenter, or
  /// can (transitively) call such a method. Unanalyzable callees are
  /// conservatively assumed to synchronize: this only makes the nesting
  /// check say "nested" more often, which is the safe direction for the
  /// validation (it admits no fewer attacker signatures than the paper's
  /// analysis, and Table I's "analyzed" count is reported separately).
  bool MayExecuteSync(MethodId method) const {
    return may_sync_.at(method);
  }

 private:
  std::vector<std::vector<MethodId>> callees_;
  std::vector<bool> may_sync_;
};

}  // namespace communix::bytecode
