// Control-flow graph over a method body.
//
// Nodes are instruction indices; edges follow fall-through, kBranch (both
// the target and the fall-through), kGoto (target only) and kReturn (no
// successors). The nesting analysis (§III-C3) walks this graph from the
// successor of each monitorenter.
#pragma once

#include <cstddef>
#include <vector>

#include "bytecode/program.hpp"

namespace communix::bytecode {

class Cfg {
 public:
  /// Builds the CFG of `method`'s body. Out-of-range jump targets are
  /// clamped out (treated as method exit), so malformed bodies cannot
  /// cause out-of-bounds successors.
  Cfg(const Program& program, MethodId method);

  std::size_t size() const { return successors_.size(); }
  const std::vector<std::size_t>& successors(std::size_t index) const {
    return successors_.at(index);
  }

 private:
  std::vector<std::vector<std::size_t>> successors_;
};

}  // namespace communix::bytecode
