// Nesting analysis: which synchronized blocks are nested? (§III-C3)
//
// A lock site is *nested* if, while the monitor is held, another monitor
// acquisition can happen: walking the CFG from the successor of the
// monitorenter, the first synchronization event seen on some path is
// another monitorenter (directly, or inside any method reachable from a
// call site before the matching monitorexit).
//
// The client-side validation (§III-C1's third check) only accepts
// signatures whose outer call stacks end in nested lock sites: a
// two-thread deadlock requires each thread to block while holding a lock,
// which is only possible at nested sites. This caps what an attacker can
// inject at N = #nested sites.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "bytecode/callgraph.hpp"
#include "bytecode/program.hpp"

namespace communix::bytecode {

/// Result of the whole-program nesting analysis.
struct NestingReport {
  /// Lock-site ids classified as nested.
  std::unordered_set<std::int32_t> nested_sites;
  /// Number of sync blocks/methods the analysis could process (the paper's
  /// "(Analyzed)" column); the rest live in unanalyzable methods.
  std::size_t analyzed = 0;
  /// Total sync blocks/methods encountered.
  std::size_t total = 0;
};

class NestingAnalysis {
 public:
  explicit NestingAnalysis(const Program& program)
      : program_(program), callgraph_(program) {}

  /// Classifies every lock site in the program.
  NestingReport AnalyzeAll() const;

  /// True iff the monitorenter at `body_index` of `method` is nested.
  /// Precondition: the instruction is a kMonitorEnter in an analyzable
  /// method.
  bool IsNested(MethodId method, std::size_t body_index) const;

 private:
  const Program& program_;
  CallGraph callgraph_;
};

}  // namespace communix::bytecode
