// Class/method/program model — the "application bytecode" substrate.
//
// Stands in for the Java class files the paper analyzes with Soot and
// hashes for signature validation (§III-C). A `Program` is a set of
// classes; each class has methods; each method is a list of instructions.
// The per-class *bytecode hash* is the SHA-256 of the class's canonical
// serialization, exactly the role class-bytecode hashes play in Communix:
// distinguishing versions of a class across application releases.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bytecode/instruction.hpp"
#include "util/sha256.hpp"

namespace communix::bytecode {

using MethodId = std::int32_t;
using ClassId = std::int32_t;
constexpr MethodId kInvalidMethod = -1;

/// A method: owning class, name, body, and analysis metadata.
struct Method {
  MethodId id = kInvalidMethod;
  ClassId class_id = -1;
  std::string name;
  bool is_synchronized = false;  // Java `synchronized` method modifier
  /// Soot cannot always reconstruct a CFG (Table I analyzes only 11-54% of
  /// sync blocks). Unanalyzable methods are skipped by the nesting
  /// analysis, reproducing that limitation.
  bool analyzable = true;
  std::vector<Instruction> body;
};

/// A class: name plus its methods (by id into Program::methods).
struct Klass {
  ClassId id = -1;
  std::string name;
  std::vector<MethodId> methods;
};

/// A lock site: the static location of a monitorenter (or of the implicit
/// monitorenter of a synchronized method). Signature outer/inner stacks
/// end in lock sites.
struct LockSite {
  std::int32_t id = -1;
  ClassId class_id = -1;
  MethodId method_id = kInvalidMethod;
  std::uint32_t line = 0;
};

/// An application: classes + methods + lock sites, with per-class hashes.
///
/// `loaded_classes` models JVM class loading: the agent computes hashes
/// lazily for loaded classes, and the nesting analysis is re-run when new
/// classes load (§III-C3). Tests drive loading explicitly.
class Program {
 public:
  /// Adds a class; returns its id.
  ClassId AddClass(std::string name);
  /// Adds a method to `class_id`; returns its id.
  MethodId AddMethod(ClassId class_id, std::string name,
                     bool is_synchronized = false);
  /// Appends an instruction to a method's body; returns its index.
  std::size_t Emit(MethodId method, Instruction insn);
  /// Registers a lock site and returns its id.
  std::int32_t AddLockSite(ClassId class_id, MethodId method_id,
                           std::uint32_t line);

  const Klass& klass(ClassId id) const { return classes_.at(id); }
  const Method& method(MethodId id) const { return methods_.at(id); }
  Method& mutable_method(MethodId id) { return methods_.at(id); }
  const LockSite& lock_site(std::int32_t id) const { return sites_.at(id); }

  std::size_t num_classes() const { return classes_.size(); }
  std::size_t num_methods() const { return methods_.size(); }
  std::size_t num_lock_sites() const { return sites_.size(); }
  const std::vector<Klass>& classes() const { return classes_; }
  const std::vector<Method>& methods() const { return methods_; }
  const std::vector<LockSite>& lock_sites() const { return sites_; }

  std::optional<ClassId> FindClass(const std::string& name) const;
  std::optional<MethodId> FindMethod(const std::string& class_name,
                                     const std::string& method_name) const;

  /// Canonical byte serialization of one class (its "bytecode"). Any
  /// change to a method body, name, or flag changes the serialization.
  std::vector<std::uint8_t> SerializeClass(ClassId id) const;

  /// SHA-256 of SerializeClass. Cached; invalidated by nothing (programs
  /// are immutable once built — rebuild to model a new app version).
  const Sha256Digest& ClassHash(ClassId id) const;

  /// Hash of the class with the given name, if present.
  std::optional<Sha256Digest> ClassHashByName(const std::string& name) const;

  /// Total "lines of code": the max line emitted per method, summed.
  std::uint64_t TotalLines() const;

  /// Statistics matching Table I's columns.
  struct Stats {
    std::uint64_t loc = 0;
    std::size_t sync_blocks_and_methods = 0;
    std::size_t explicit_sync_ops = 0;
  };
  Stats ComputeStats() const;

 private:
  std::vector<Klass> classes_;
  std::vector<Method> methods_;
  std::vector<LockSite> sites_;
  std::unordered_map<std::string, ClassId> class_by_name_;
  mutable std::vector<std::optional<Sha256Digest>> hash_cache_;
};

}  // namespace communix::bytecode
