#include "bytecode/synthetic.hpp"

#include <cassert>
#include <stdexcept>

namespace communix::bytecode {

namespace {

/// Emits a run of kCompute instructions, advancing the line counter.
void EmitComputes(Program& p, MethodId m, std::uint32_t& line, int count,
                  Rng& rng) {
  for (int i = 0; i < count; ++i) {
    line += static_cast<std::uint32_t>(rng.NextInt(1, 6));
    p.Emit(m, Instruction{Opcode::kCompute, -1, line});
  }
}

}  // namespace

SyntheticApp GenerateApp(const SyntheticSpec& spec) {
  if (spec.sync_blocks < spec.analyzable_sync_blocks) {
    throw std::invalid_argument("analyzable_sync_blocks > sync_blocks");
  }
  if (spec.analyzable_sync_blocks <
      spec.nested_sync_blocks + spec.sync_helpers) {
    throw std::invalid_argument(
        "analyzable_sync_blocks must cover nested hosts + helpers");
  }
  if (spec.classes == 0) throw std::invalid_argument("classes == 0");
  if (spec.nested_sync_blocks > 0 && spec.sync_helpers == 0) {
    throw std::invalid_argument("nested hosts require at least one helper");
  }

  SyntheticApp app;
  app.spec = spec;
  Program& p = app.program;
  Rng rng(spec.seed);

  const std::size_t hosts_total = spec.sync_blocks - spec.sync_helpers;
  const std::size_t analyzable_hosts =
      spec.analyzable_sync_blocks - spec.sync_helpers;
  const std::size_t nested_hosts = spec.nested_sync_blocks;
  const std::size_t unanalyzable_hosts = hosts_total - analyzable_hosts;

  // --- Classes --------------------------------------------------------
  std::vector<ClassId> classes;
  classes.reserve(spec.classes);
  for (std::size_t c = 0; c < spec.classes; ++c) {
    classes.push_back(p.AddClass(spec.name + ".pkg" + std::to_string(c % 17) +
                                 ".C" + std::to_string(c)));
  }

  // --- Synchronized helpers (the "synchronized method" population) -----
  std::vector<MethodId> helpers;
  for (std::size_t h = 0; h < spec.sync_helpers; ++h) {
    const ClassId cid = classes[h % classes.size()];
    const MethodId m = p.AddMethod(cid, "syncHelper" + std::to_string(h));
    helpers.push_back(m);
    std::uint32_t line = 1;
    line += 1;
    const std::int32_t site = p.AddLockSite(cid, m, line);
    app.helper_sites.push_back(site);
    p.Emit(m, Instruction{Opcode::kMonitorEnter, site, line});
    EmitComputes(p, m, line, static_cast<int>(rng.NextInt(2, 6)), rng);
    line += 1;
    p.Emit(m, Instruction{Opcode::kMonitorExit, site, line});
    p.Emit(m, Instruction{Opcode::kReturn, -1, line});
  }

  // --- Hosts ------------------------------------------------------------
  // Order: nested (analyzable), non-nested (analyzable), unanalyzable.
  struct HostPlan {
    bool nested;
    bool analyzable;
  };
  std::vector<HostPlan> plans;
  plans.reserve(hosts_total);
  for (std::size_t i = 0; i < nested_hosts; ++i)
    plans.push_back({true, true});
  for (std::size_t i = nested_hosts; i < analyzable_hosts; ++i)
    plans.push_back({false, true});
  for (std::size_t i = 0; i < unanalyzable_hosts; ++i)
    plans.push_back({rng.NextBool(0.3), false});

  std::vector<std::vector<MethodId>> hosts_in_class(classes.size());
  app.chain_of_site.assign(hosts_total + spec.sync_helpers + 16, -1);

  std::vector<MethodId> host_methods;
  std::vector<std::int32_t> host_sites;
  host_methods.reserve(hosts_total);
  for (std::size_t i = 0; i < hosts_total; ++i) {
    const std::size_t c = i % classes.size();
    const ClassId cid = classes[c];
    const MethodId m = p.AddMethod(cid, "host" + std::to_string(i));
    p.mutable_method(m).analyzable = plans[i].analyzable;
    hosts_in_class[c].push_back(m);
    host_methods.push_back(m);

    std::uint32_t line = 1;
    EmitComputes(p, m, line, static_cast<int>(rng.NextInt(1, 4)), rng);
    line += 1;
    const std::int32_t site = p.AddLockSite(cid, m, line);
    host_sites.push_back(site);
    p.Emit(m, Instruction{Opcode::kMonitorEnter, site, line});
    EmitComputes(p, m, line, static_cast<int>(rng.NextInt(1, 3)), rng);
    if (plans[i].nested && !helpers.empty()) {
      const MethodId callee =
          helpers[rng.NextBounded(helpers.size())];
      line += 1;
      p.Emit(m, Instruction{Opcode::kInvoke, callee, line});
      EmitComputes(p, m, line, 1, rng);
    }
    line += 1;
    p.Emit(m, Instruction{Opcode::kMonitorExit, site, line});
    EmitComputes(p, m, line, static_cast<int>(rng.NextInt(1, 3)), rng);
    p.Emit(m, Instruction{Opcode::kReturn, -1, line});

    if (plans[i].analyzable) {
      if (plans[i].nested) {
        app.nested_sites.push_back(site);
      } else {
        app.non_nested_sites.push_back(site);
      }
    } else {
      app.unanalyzable_sites.push_back(site);
    }
  }

  // --- Driver chains: one per class, last driver invokes that class's
  // hosts. The chain provides the deep call stacks under which hosts run.
  std::vector<std::vector<MethodId>> class_chain(classes.size());
  const std::size_t chain_len = std::max<std::size_t>(spec.driver_chain_length, 1);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    if (hosts_in_class[c].empty()) continue;
    auto& chain = class_chain[c];
    for (std::size_t d = 0; d < chain_len; ++d) {
      chain.push_back(
          p.AddMethod(classes[c], "drive" + std::to_string(d)));
    }
    for (std::size_t d = 0; d < chain_len; ++d) {
      const MethodId m = chain[d];
      std::uint32_t line = 1;
      EmitComputes(p, m, line, 2, rng);
      if (d + 1 < chain_len) {
        line += 1;
        p.Emit(m, Instruction{Opcode::kInvoke, chain[d + 1], line});
      } else {
        for (MethodId host : hosts_in_class[c]) {
          line += 1;
          p.Emit(m, Instruction{Opcode::kInvoke, host, line});
        }
      }
      EmitComputes(p, m, line, 1, rng);
      p.Emit(m, Instruction{Opcode::kReturn, -1, line});
    }
  }

  // Record per-site driver chains for stack synthesis.
  app.driver_chains.resize(host_sites.size());
  if (app.chain_of_site.size() < p.num_lock_sites()) {
    app.chain_of_site.resize(p.num_lock_sites(), -1);
  }
  for (std::size_t i = 0; i < host_sites.size(); ++i) {
    const std::size_t c = i % classes.size();
    app.driver_chains[i] = class_chain[c];
    app.chain_of_site[host_sites[i]] = static_cast<std::int32_t>(i);
  }

  // --- Explicit lock/unlock population (ignored by Communix, §III-C1) --
  std::size_t explicit_emitted = 0;
  std::size_t plain_idx = 0;
  while (explicit_emitted < spec.explicit_sync_ops) {
    const ClassId cid = classes[plain_idx % classes.size()];
    const MethodId m =
        p.AddMethod(cid, "explicitLocker" + std::to_string(plain_idx));
    ++plain_idx;
    std::uint32_t line = 1;
    EmitComputes(p, m, line, 2, rng);
    line += 1;
    p.Emit(m, Instruction{Opcode::kExplicitLock, -1, line});
    ++explicit_emitted;
    EmitComputes(p, m, line, 2, rng);
    if (explicit_emitted < spec.explicit_sync_ops) {
      line += 1;
      p.Emit(m, Instruction{Opcode::kExplicitUnlock, -1, line});
      ++explicit_emitted;
    }
    p.Emit(m, Instruction{Opcode::kReturn, -1, line});
  }

  // --- LOC padding ------------------------------------------------------
  // Filler methods of ~2,000 lines each until the LOC target is reached.
  const std::uint64_t have = p.TotalLines();
  if (spec.target_loc > have) {
    std::uint64_t deficit = spec.target_loc - have;
    std::size_t filler_idx = 0;
    while (deficit > 0) {
      const std::uint64_t span = std::min<std::uint64_t>(deficit, 2'000);
      const ClassId cid = classes[filler_idx % classes.size()];
      const MethodId m =
          p.AddMethod(cid, "filler" + std::to_string(filler_idx));
      ++filler_idx;
      std::uint32_t line = 0;
      while (line < span) {
        line += static_cast<std::uint32_t>(rng.NextInt(6, 10));
        if (line > span) line = static_cast<std::uint32_t>(span);
        p.Emit(m, Instruction{Opcode::kCompute, -1, line});
      }
      p.Emit(m, Instruction{Opcode::kReturn, -1, line});
      deficit -= span;
    }
  }

  return app;
}

SyntheticSpec JBossProfile() {
  SyntheticSpec s;
  s.name = "jboss";
  s.target_loc = 636'895;
  s.sync_blocks = 1'898;
  s.analyzable_sync_blocks = 844;
  s.nested_sync_blocks = 249;
  s.explicit_sync_ops = 104;
  s.classes = 300;
  s.driver_chain_length = 12;
  s.seed = 0xB055;
  return s;
}

SyntheticSpec LimewireProfile() {
  SyntheticSpec s;
  s.name = "limewire";
  s.target_loc = 595'623;
  s.sync_blocks = 1'435;
  s.analyzable_sync_blocks = 781;
  s.nested_sync_blocks = 277;
  s.explicit_sync_ops = 189;
  s.classes = 280;
  s.driver_chain_length = 12;
  s.seed = 0x11ED;
  return s;
}

SyntheticSpec VuzeProfile() {
  SyntheticSpec s;
  s.name = "vuze";
  s.target_loc = 476'702;
  s.sync_blocks = 3'653;
  s.analyzable_sync_blocks = 432;
  s.nested_sync_blocks = 120;
  s.explicit_sync_ops = 14;
  s.classes = 220;
  s.driver_chain_length = 12;
  s.seed = 0x0ACE;
  return s;
}

SyntheticSpec EclipseProfile() {
  // Eclipse appears in Table II only; Table I does not report its
  // statistics. Plausible numbers for a large IDE codebase.
  SyntheticSpec s;
  s.name = "eclipse";
  s.target_loc = 812'000;
  s.sync_blocks = 2'410;
  s.analyzable_sync_blocks = 980;
  s.nested_sync_blocks = 301;
  s.explicit_sync_ops = 131;
  s.classes = 340;
  s.driver_chain_length = 13;
  s.seed = 0xEC11;
  return s;
}

SyntheticSpec MySqlJdbcProfile() {
  // MySQL Connector/J (Table II's "MySQL JDBC"): a mid-size driver.
  SyntheticSpec s;
  s.name = "mysql-jdbc";
  s.target_loc = 68'500;
  s.sync_blocks = 312;
  s.analyzable_sync_blocks = 165;
  s.nested_sync_blocks = 58;
  s.explicit_sync_ops = 36;
  s.classes = 60;
  s.driver_chain_length = 11;
  s.seed = 0x5DBC;
  return s;
}

}  // namespace communix::bytecode
