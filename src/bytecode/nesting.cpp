#include "bytecode/nesting.hpp"

#include <deque>

#include "bytecode/cfg.hpp"

namespace communix::bytecode {

bool NestingAnalysis::IsNested(MethodId method, std::size_t body_index) const {
  const Method& m = program_.method(method);
  const Cfg cfg(program_, method);
  const auto& body = m.body;

  // BFS from the successors of the monitorenter. Each path terminates at
  // the first monitorenter (=> nested), monitorexit (=> that path is
  // non-nested), or a call that may synchronize (=> nested). If *any*
  // path proves nesting, the block is nested — the deadlock only needs
  // one feasible path.
  std::deque<std::size_t> worklist(cfg.successors(body_index).begin(),
                                   cfg.successors(body_index).end());
  std::vector<bool> visited(body.size(), false);

  while (!worklist.empty()) {
    const std::size_t i = worklist.front();
    worklist.pop_front();
    if (visited[i]) continue;
    visited[i] = true;

    switch (body[i].op) {
      case Opcode::kMonitorEnter:
        return true;
      case Opcode::kMonitorExit:
        continue;  // this path closes the block without nesting
      case Opcode::kInvoke:
        if (body[i].operand >= 0 &&
            static_cast<std::size_t>(body[i].operand) <
                program_.num_methods() &&
            callgraph_.MayExecuteSync(body[i].operand)) {
          return true;
        }
        break;
      default:
        break;
    }
    for (std::size_t succ : cfg.successors(i)) {
      if (!visited[succ]) worklist.push_back(succ);
    }
  }
  return false;
}

NestingReport NestingAnalysis::AnalyzeAll() const {
  NestingReport report;
  for (const Method& m : program_.methods()) {
    for (std::size_t i = 0; i < m.body.size(); ++i) {
      const Instruction& insn = m.body[i];
      if (insn.op != Opcode::kMonitorEnter) continue;
      ++report.total;
      if (!m.analyzable) continue;  // Soot could not build this CFG
      ++report.analyzed;
      if (IsNested(m.id, i) && insn.operand >= 0) {
        report.nested_sites.insert(insn.operand);
      }
    }
  }
  return report;
}

}  // namespace communix::bytecode
