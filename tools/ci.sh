#!/usr/bin/env bash
# CI entry point.
#
# Default: tier-1 verify (configure + build + full ctest) followed by the
# Figure-2 server bench (sharded-vs-monolithic comparison) and the
# Table-II overhead bench (fast-path-vs-global-lock comparison), both in
# smoke mode, recording the perf trajectory in BENCH_fig2.json and
# BENCH_overhead.json at the repo root.
#
# Both the default and --tsan modes additionally run the net smoke:
# slow-client containment (1-byte reader capped + disconnected while
# healthy clients stay flat on a single-worker server), hostile framing
# (1-byte request trickle, every-byte reply truncation, pipelined-burst
# reply coalescing), and the two-process shipper (pipelined ShipRound +
# SIGTERM/restart recovery against real communix_server daemons over
# reconnecting TCP transports).
#
# Both modes additionally run the cluster smoke:
# a primary + 2 log-shipping followers over inproc transport with a
# kill-primary failover check (tests/cluster/cluster_client_test.cpp,
# suite ClusterSmoke), plus the store-tier smoke: checkpoint bootstrap
# of a far-behind follower and the client read cache exercised both on
# (ClusterClientCacheTest, equivalence trace) and off (the routing tests
# pin read_cache_slices = 0), and the sharded smoke: 2 community-sharded
# primary groups (2 followers each) behind the shard-map routing tier
# with a mid-run map bump (suite ShardedSmoke).
#
# The default mode also repeats the monitor wake-path stress (many
# waiters + churning bargers, handoff racing an RCU index republish)
# beyond its single ctest pass.
#
# --tsan: ThreadSanitizer build (separate build-tsan dir) running the
# dimmunix + util + cluster test binaries — the concurrency-bearing
# layers of the client runtime (fast-path publication protocol, direct
# monitor handoff + wake turnstile, adaptive occupancy gate, schedule
# harness, thread pool) and of the replication tier (feed reads racing
# ADDs, background shipper) — with a repeated run of the fairness and
# wakeup-ordering suites on top.
#
# --asan: AddressSanitizer build (separate build-asan dir) running the
# same binaries — lifetime coverage for the context reaper and the
# entry sharing across delta-rebuilt index snapshots.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

if [[ "${1:-}" == "--tsan" ]]; then
  cmake -B build-tsan -S . -DCOMMUNIX_TSAN=ON
  cmake --build build-tsan -j"${JOBS}" --target dimmunix_tests util_tests \
        cluster_tests communix_tests net_tests communix_server communix_stats
  # tools/tsan.supp scopes out a libstdc++ atomic<shared_ptr> internal
  # (relaxed spinlock unlock in _Sp_atomic::load) TSAN cannot model.
  TSAN="halt_on_error=1 suppressions=$(pwd)/tools/tsan.supp"
  TSAN_OPTIONS="${TSAN}" ./build-tsan/dimmunix_tests
  # Wake-path focus under TSAN: the direct-handoff fairness suite (strict
  # no-barging protocol, wake-path stress, handoff x RCU-republish
  # regression) and the wakeup-ordering harness scripts (two-sided
  # suspension drains, hook-selected winners), repeated — the interesting
  # interleavings are rare in a single pass.
  TSAN_OPTIONS="${TSAN}" ./build-tsan/dimmunix_tests \
      --gtest_filter='FairnessTest.*:ScheduleHarnessTest.TwoSidedSuspensionRacesAreDeterministic:ScheduleHarnessTest.MultiWaiterHandoffDrainsInFifoOrder:ScheduleHarnessTest.WakeupOrderingHookControlsWhichWaiterWins' \
      --gtest_repeat=5
  TSAN_OPTIONS="${TSAN}" ./build-tsan/util_tests
  # Store-tier smoke under TSAN: concurrent ReadSince (2Q cache + RCU log
  # swap) racing ADDs on both backends.
  TSAN_OPTIONS="${TSAN}" ./build-tsan/communix_tests \
      --gtest_filter='*ConcurrentReadersAndWritersStayCoherent*'
  # Cluster smoke under TSAN: kill-primary failover, the background
  # shipper racing ADDs and lock-free feed reads, checkpoint bootstrap of
  # a far-behind follower, and the client read cache (on in the cache
  # suite, off in the routing tests it replaces).
  TSAN_OPTIONS="${TSAN}" ./build-tsan/cluster_tests \
      --gtest_filter='ClusterSmoke.*:LogShipperTest.BackgroundDaemonShipsConcurrentAdds:LogShipperTest.CatchUpResetUnderConcurrentReadersIsSafe:CheckpointBootstrapTest.*:ClusterClientCacheTest.*:ShardedSmoke.*'
  # Net smoke under TSAN: the poll-loop/worker conn handoff, the
  # non-blocking gather flush racing POLLOUT re-arms, slow-client
  # containment, and the two-process shipper (a TSAN parent driving
  # TSAN-built communix_server children over real sockets).
  TSAN_OPTIONS="${TSAN}" ./build-tsan/net_tests \
      --gtest_filter='SlowClientTest.*:FramingTest.*:TcpTest.*'
  # Two-process shipper plus the observability scrape: StatsScrape drives
  # ADDs at a real primary, polls the follower's kStats snapshot until
  # replication catches up, and runs the communix_stats CLI (popen'd from
  # the TSAN parent against TSAN-built daemons) over both processes.
  TSAN_OPTIONS="${TSAN}" ./build-tsan/cluster_tests \
      --gtest_filter='TwoProcessShipper.*:StatsScrape.*'
  echo "ci: tsan clean (dimmunix_tests, util_tests, store-tier smoke, cluster + sharded smoke, net smoke, stats scrape)"
  exit 0
fi

if [[ "${1:-}" == "--asan" ]]; then
  cmake -B build-asan -S . -DCOMMUNIX_ASAN=ON
  cmake --build build-asan -j"${JOBS}" --target dimmunix_tests util_tests
  ASAN_OPTIONS="halt_on_error=1" ./build-asan/dimmunix_tests
  ASAN_OPTIONS="halt_on_error=1" ./build-asan/util_tests
  echo "ci: asan clean (dimmunix_tests, util_tests)"
  exit 0
fi

cmake -B build -S .
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

# Wake-path stress smoke: many waiters + churning bargers on one monitor
# plus the handoff-during-RCU-republish regression, repeated so a lost
# wakeup (which hangs) or a dropped queue entry (which undercounts) has
# many chances to fire.
./build/dimmunix_tests \
    --gtest_filter='FairnessTest.WakePathStressManyWaitersChurningBargers:FairnessTest.HandoffDuringIndexRepublishDoesNotLoseWakeup' \
    --gtest_repeat=10
echo "ci: wake-path stress smoke passed"

# Cluster smoke: primary + 2 followers over inproc, kill-primary failover,
# checkpoint bootstrap of a far-behind follower, and the client read cache
# on (ClusterClientCacheTest) and off (the routing tests pin it off).
# Sharded smoke: 2 groups x (primary + 2 followers) behind the shard-map
# routing tier, with a mid-run map bump the client must self-heal from.
./build/cluster_tests \
    --gtest_filter='ClusterSmoke.*:CheckpointBootstrapTest.*:ClusterClientCacheTest.*:ShardedSmoke.*'
echo "ci: cluster smoke passed (failover, checkpoint bootstrap, read cache, sharded routing)"

# Net smoke: slow-client containment + hostile framing on the
# non-blocking reply path, the zero-copy reply accounting on both store
# backends, and the two-process shipper over real daemons.
./build/net_tests --gtest_filter='SlowClientTest.*:FramingTest.*'
./build/communix_tests --gtest_filter='*ZeroCopyReplyTest*'
./build/cluster_tests --gtest_filter='TwoProcessShipper.*:StatsScrape.*'
echo "ci: net smoke passed (slow-client containment, framing, zero-copy replies, two-process shipper, stats scrape)"

# Observability smoke: a live two-process deployment (primary shipping to
# one follower) scraped over the kStats wire verb with the communix_stats
# CLI — key counters from the runtime/serving/net tiers must be non-zero,
# and the replication ledger must agree across the two processes
# (follower entries_applied == primary entries_shipped).
OBS_DIR="$(mktemp -d)"
OBS_PIDS=""
obs_cleanup() {
  # shellcheck disable=SC2086
  [[ -n "${OBS_PIDS}" ]] && kill ${OBS_PIDS} 2>/dev/null || true
  rm -rf "${OBS_DIR}"
}
trap obs_cleanup EXIT

obs_wait_port() {  # obs_wait_port LOGFILE -> sets OBS_PORT
  local log="$1"
  for _ in $(seq 1 100); do
    OBS_PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
        "${log}" | head -1)"
    [[ -n "${OBS_PORT}" ]] && return 0
    sleep 0.1
  done
  echo "ci: daemon never reported its port (${log})"
  cat "${log}"
  return 1
}

./build/communix_server --port 0 --db "${OBS_DIR}/follower.db" \
    --role follower > "${OBS_DIR}/follower.log" 2>&1 &
OBS_PIDS="$!"
obs_wait_port "${OBS_DIR}/follower.log"
OBS_FPORT="${OBS_PORT}"
./build/communix_server --port 0 --db "${OBS_DIR}/primary.db" \
    --follower "127.0.0.1:${OBS_FPORT}" > "${OBS_DIR}/primary.log" 2>&1 &
OBS_PIDS="${OBS_PIDS} $!"
obs_wait_port "${OBS_DIR}/primary.log"
OBS_PPORT="${OBS_PORT}"

# One real client poll so the serving tier has traffic to account for.
./build/communix_client --host 127.0.0.1 --port "${OBS_PPORT}" \
    --repo "${OBS_DIR}/repo.db" --once

obs_get() { ./build/communix_stats "127.0.0.1:$1" --get "$2"; }
obs_nonzero() {
  local v
  v="$(obs_get "$1" "$2")"
  if [[ -z "${v}" || "${v}" -eq 0 ]]; then
    echo "ci: expected $2 > 0 on port $1, got '${v}'"
    exit 1
  fi
}
obs_nonzero "${OBS_PPORT}" dimmunix.acquisitions   # runtime self-check
obs_nonzero "${OBS_PPORT}" server.gets_served      # the client poll
obs_nonzero "${OBS_PPORT}" net.writev_flushes      # replies flushed
obs_nonzero "${OBS_FPORT}" dimmunix.acquisitions
SHIPPED="$(obs_get "${OBS_PPORT}" cluster.shipper.entries_shipped)"
APPLIED="$(obs_get "${OBS_FPORT}" server.repl_entries_applied)"
if [[ "${SHIPPED}" != "${APPLIED}" ]]; then
  echo "ci: replication ledger split: primary shipped ${SHIPPED}," \
       "follower applied ${APPLIED}"
  exit 1
fi
# The JSON snapshot round-trips through the offline renderer.
./build/communix_stats "127.0.0.1:${OBS_PPORT}" --json --traces 4 \
    > "${OBS_DIR}/snapshot.json"
./build/sig_inspect stats "${OBS_DIR}/snapshot.json" > /dev/null
obs_cleanup
trap - EXIT
echo "ci: observability smoke passed (kStats scrape of both daemons," \
     "ledger ${SHIPPED}==${APPLIED}, JSON snapshot re-rendered)"

./build/fig2_server_throughput --smoke --compare --replicas=2 --groups=2 \
    --json=BENCH_fig2.json
./build/table2_dos_overhead --smoke --json=BENCH_overhead.json
echo "ci: wrote $(pwd)/BENCH_fig2.json and $(pwd)/BENCH_overhead.json"
