#!/usr/bin/env bash
# CI entry point: tier-1 verify (configure + build + full ctest) followed
# by the Figure-2 server bench in smoke mode with the sharded-vs-
# monolithic comparison, recording the perf trajectory in BENCH_fig2.json
# at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

./build/fig2_server_throughput --smoke --compare --json=BENCH_fig2.json
echo "ci: wrote $(pwd)/BENCH_fig2.json"
