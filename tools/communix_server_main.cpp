// communix_server — the deployable Communix server daemon.
//
// Serves ADD/GET/ISSUE_ID over TCP, persisting the signature database to
// disk on shutdown (SIGINT/SIGTERM) and periodically.
//
//   communix_server [--port N] [--db PATH] [--limit PER_USER_PER_DAY]
//                   [--role primary|follower] [--follower HOST:PORT]...
//                   [--slow-ns N]
//
// --role follower starts a replication follower: ADDs are refused and a
// primary's LogShipper feeds it via kReplBatch/kCheckpoint. The two-
// process deployment tests drive exactly this binary.
//
// --follower HOST:PORT (primary only, repeatable) runs the LogShipper
// inside this daemon against the named follower endpoint(s), so a
// two-process deployment needs no external shipping driver and the
// primary's kStats snapshot carries the cluster.shipper.* rows.
//
// --slow-ns N arms slow-request tracing: requests whose stage total
// reaches N nanoseconds are logged and served via the kStats trace
// sub-query (tools/communix_stats --traces).
//
// Every tier of the process — dimmunix runtime, server, store/cache,
// cluster shipper, TCP transport — reports into ONE metrics registry,
// so a single kStats scrape (the new wire verb) sees the whole process.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "communix/cluster/log_shipper.hpp"
#include "communix/server.hpp"
#include "dimmunix/runtime.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/logging.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

bool SplitHostPort(const std::string& spec, std::string* host,
                   std::uint16_t* port) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return false;
  }
  *host = spec.substr(0, colon);
  const int p = std::atoi(spec.c_str() + colon + 1);
  if (p <= 0 || p > 65535) return false;
  *port = static_cast<std::uint16_t>(p);
  return true;
}

/// Attach/acquire/release/detach once so the runtime tier's counters are
/// live (nonzero) in the daemon's snapshot — a startup self-check that
/// the instrumentation path works in this binary, not just in tests.
void ExerciseRuntime(communix::dimmunix::DimmunixRuntime& runtime) {
  auto& ctx = runtime.AttachThread("startup-selfcheck");
  communix::dimmunix::Monitor m("selfcheck");
  if (runtime.Acquire(ctx, m).ok()) runtime.Release(ctx, m);
  runtime.DetachThread(ctx);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 7411;
  std::string db_path = "communix_server.db";
  std::size_t limit = 10;
  communix::ServerRole role = communix::ServerRole::kPrimary;
  std::vector<std::string> follower_specs;
  std::uint64_t slow_ns = 0;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(std::atoi(need_value("--port")));
    } else if (std::strcmp(argv[i], "--db") == 0) {
      db_path = need_value("--db");
    } else if (std::strcmp(argv[i], "--limit") == 0) {
      limit = static_cast<std::size_t>(std::atoi(need_value("--limit")));
    } else if (std::strcmp(argv[i], "--follower") == 0) {
      follower_specs.emplace_back(need_value("--follower"));
    } else if (std::strcmp(argv[i], "--slow-ns") == 0) {
      slow_ns = static_cast<std::uint64_t>(
          std::strtoull(need_value("--slow-ns"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--role") == 0) {
      const char* value = need_value("--role");
      if (std::strcmp(value, "primary") == 0) {
        role = communix::ServerRole::kPrimary;
      } else if (std::strcmp(value, "follower") == 0) {
        role = communix::ServerRole::kFollower;
      } else {
        std::fprintf(stderr, "--role must be primary or follower\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--db PATH] [--limit N] "
                   "[--role primary|follower] [--follower HOST:PORT]... "
                   "[--slow-ns N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!follower_specs.empty() && role != communix::ServerRole::kPrimary) {
    std::fprintf(stderr, "--follower is a primary-side flag\n");
    return 2;
  }

  communix::SetLogLevel(communix::LogLevel::kInfo);

  // One registry for the whole process: server, store probe, transport,
  // shipper and runtime all report here; kStats serves its snapshot.
  auto metrics = std::make_shared<communix::obs::MetricsRegistry>();

  communix::CommunixServer::Options options;
  options.per_user_daily_limit = limit;
  options.role = role;
  options.metrics = metrics;
  options.store.slow_request_ns = slow_ns;
  communix::CommunixServer server(communix::SystemClock::Instance(), options);

  // The runtime tier: the daemon carries a DimmunixRuntime (the paper's
  // client-side immunity engine) so its counters appear in the same
  // snapshot. Probe handle released before the runtime dies (declaration
  // order below).
  communix::dimmunix::DimmunixRuntime runtime(
      communix::SystemClock::Instance());
  const communix::obs::ProbeHandle runtime_probe =
      runtime.ExportStats(*metrics);
  ExerciseRuntime(runtime);

  if (std::filesystem::exists(db_path)) {
    if (auto s = server.LoadFromFile(db_path); !s.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", db_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("loaded %llu signatures from %s\n",
                static_cast<unsigned long long>(server.db_size()),
                db_path.c_str());
  }

  communix::net::TcpServer::Options tcp_options;
  tcp_options.port = port;
  tcp_options.metrics = metrics;
  communix::net::TcpServer tcp(server, tcp_options);
  if (auto s = tcp.Start(); !s.ok()) {
    std::fprintf(stderr, "cannot listen on %u: %s\n", port,
                 s.ToString().c_str());
    return 1;
  }

  // In-daemon shipping: transports must outlive the shipper; the probe
  // handle must be released before the shipper (reverse declaration
  // order of these locals handles both).
  std::vector<std::unique_ptr<communix::net::ReconnectingTcpClient>>
      follower_clients;
  std::optional<communix::cluster::LogShipper> shipper;
  communix::obs::ProbeHandle shipper_probe;
  if (!follower_specs.empty()) {
    shipper.emplace(server);
    for (const std::string& spec : follower_specs) {
      std::string host;
      std::uint16_t fport = 0;
      if (!SplitHostPort(spec, &host, &fport)) {
        std::fprintf(stderr, "--follower expects HOST:PORT, got %s\n",
                     spec.c_str());
        return 2;
      }
      follower_clients.push_back(
          std::make_unique<communix::net::ReconnectingTcpClient>(host, fport));
      shipper->AddFollower(spec, *follower_clients.back());
    }
    shipper_probe = shipper->ExportStats(*metrics);
    shipper->Start();
  }

  std::printf("communix server listening on 127.0.0.1:%u (db: %s, "
              "limit: %zu/user/day, role: %s)\n",
              tcp.port(), db_path.c_str(), limit,
              role == communix::ServerRole::kFollower ? "follower"
                                                      : "primary");
  // The deployment harness reads this line through a pipe to learn the
  // bound port; without the flush it sits in the stdio buffer forever.
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::uint64_t last_size = server.db_size();
  while (!g_stop) {
    communix::SystemClock::Instance().SleepFor(500'000'000);  // 0.5 s
    // Periodic checkpoint when the database grew.
    const std::uint64_t size = server.db_size();
    if (size != last_size) {
      if (auto s = server.SaveToFile(db_path); s.ok()) last_size = size;
    }
  }

  if (shipper.has_value()) {
    shipper_probe.Release();
    shipper->Stop();
  }
  tcp.Stop();
  if (auto s = server.SaveToFile(db_path); !s.ok()) {
    std::fprintf(stderr, "final save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto stats = server.GetStats();
  std::printf("shut down; %llu signatures persisted; accepted=%llu "
              "rejected(token/adjacent/rate)=%llu/%llu/%llu\n",
              static_cast<unsigned long long>(server.db_size()),
              static_cast<unsigned long long>(stats.adds_accepted),
              static_cast<unsigned long long>(stats.rejected_bad_token),
              static_cast<unsigned long long>(stats.rejected_adjacent),
              static_cast<unsigned long long>(stats.rejected_rate_limited));
  return 0;
}
