// communix_server — the deployable Communix server daemon.
//
// Serves ADD/GET/ISSUE_ID over TCP, persisting the signature database to
// disk on shutdown (SIGINT/SIGTERM) and periodically.
//
//   communix_server [--port N] [--db PATH] [--limit PER_USER_PER_DAY]
//                   [--role primary|follower]
//
// --role follower starts a replication follower: ADDs are refused and a
// primary's LogShipper feeds it via kReplBatch/kCheckpoint. The two-
// process deployment tests drive exactly this binary.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "communix/server.hpp"
#include "net/tcp.hpp"
#include "util/clock.hpp"
#include "util/logging.hpp"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 7411;
  std::string db_path = "communix_server.db";
  std::size_t limit = 10;
  communix::ServerRole role = communix::ServerRole::kPrimary;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(std::atoi(need_value("--port")));
    } else if (std::strcmp(argv[i], "--db") == 0) {
      db_path = need_value("--db");
    } else if (std::strcmp(argv[i], "--limit") == 0) {
      limit = static_cast<std::size_t>(std::atoi(need_value("--limit")));
    } else if (std::strcmp(argv[i], "--role") == 0) {
      const char* value = need_value("--role");
      if (std::strcmp(value, "primary") == 0) {
        role = communix::ServerRole::kPrimary;
      } else if (std::strcmp(value, "follower") == 0) {
        role = communix::ServerRole::kFollower;
      } else {
        std::fprintf(stderr, "--role must be primary or follower\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--db PATH] [--limit N] "
                   "[--role primary|follower]\n",
                   argv[0]);
      return 2;
    }
  }

  communix::SetLogLevel(communix::LogLevel::kInfo);
  communix::CommunixServer::Options options;
  options.per_user_daily_limit = limit;
  options.role = role;
  communix::CommunixServer server(communix::SystemClock::Instance(), options);

  if (std::filesystem::exists(db_path)) {
    if (auto s = server.LoadFromFile(db_path); !s.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", db_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("loaded %llu signatures from %s\n",
                static_cast<unsigned long long>(server.db_size()),
                db_path.c_str());
  }

  communix::net::TcpServer tcp(server, port);
  if (auto s = tcp.Start(); !s.ok()) {
    std::fprintf(stderr, "cannot listen on %u: %s\n", port,
                 s.ToString().c_str());
    return 1;
  }
  std::printf("communix server listening on 127.0.0.1:%u (db: %s, "
              "limit: %zu/user/day, role: %s)\n",
              tcp.port(), db_path.c_str(), limit,
              role == communix::ServerRole::kFollower ? "follower"
                                                      : "primary");
  // The deployment harness reads this line through a pipe to learn the
  // bound port; without the flush it sits in the stdio buffer forever.
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::uint64_t last_size = server.db_size();
  while (!g_stop) {
    communix::SystemClock::Instance().SleepFor(500'000'000);  // 0.5 s
    // Periodic checkpoint when the database grew.
    const std::uint64_t size = server.db_size();
    if (size != last_size) {
      if (auto s = server.SaveToFile(db_path); s.ok()) last_size = size;
    }
  }

  tcp.Stop();
  if (auto s = server.SaveToFile(db_path); !s.ok()) {
    std::fprintf(stderr, "final save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto stats = server.GetStats();
  std::printf("shut down; %llu signatures persisted; accepted=%llu "
              "rejected(token/adjacent/rate)=%llu/%llu/%llu\n",
              static_cast<unsigned long long>(server.db_size()),
              static_cast<unsigned long long>(stats.adds_accepted),
              static_cast<unsigned long long>(stats.rejected_bad_token),
              static_cast<unsigned long long>(stats.rejected_adjacent),
              static_cast<unsigned long long>(stats.rejected_rate_limited));
  return 0;
}
