// communix_client — the per-machine Communix client daemon (§III-B).
//
// Periodically performs an incremental GET against the server and appends
// new signatures to a file-backed local repository that agents on this
// machine inspect at application start.
//
//   communix_client [--host H] [--port N] [--repo PATH]
//                   [--period-seconds S] [--once]
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "communix/client.hpp"
#include "net/tcp.hpp"
#include "util/clock.hpp"
#include "util/logging.hpp"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7411;
  std::string repo_path = "communix_repo.db";
  long period_seconds = 86'400;  // the paper's once-a-day default
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      host = need_value("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(std::atoi(need_value("--port")));
    } else if (std::strcmp(argv[i], "--repo") == 0) {
      repo_path = need_value("--repo");
    } else if (std::strcmp(argv[i], "--period-seconds") == 0) {
      period_seconds = std::atol(need_value("--period-seconds"));
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host H] [--port N] [--repo PATH] "
                   "[--period-seconds S] [--once]\n",
                   argv[0]);
      return 2;
    }
  }

  communix::SetLogLevel(communix::LogLevel::kInfo);
  communix::LocalRepository repo;
  if (std::filesystem::exists(repo_path)) {
    if (auto s = communix::LocalRepository::LoadFromFile(repo_path, repo);
        !s.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", repo_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }
  std::printf("repository %s: %zu signatures (next server index %llu)\n",
              repo_path.c_str(), repo.size(),
              static_cast<unsigned long long>(repo.next_server_index()));

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  do {
    communix::net::TcpClient transport;
    if (auto s = transport.Connect(host, port); !s.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
    } else {
      communix::CommunixClient client(communix::SystemClock::Instance(),
                                      transport, repo);
      auto fetched = client.PollOnce();
      if (fetched.ok()) {
        std::printf("fetched %zu new signature(s); repository now %zu\n",
                    fetched.value(), repo.size());
        if (fetched.value() > 0) {
          if (auto s = repo.SaveToFile(repo_path); !s.ok()) {
            std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
          }
        }
      } else {
        std::fprintf(stderr, "poll failed: %s\n",
                     fetched.status().ToString().c_str());
      }
    }
    if (once) break;
    for (long waited = 0; waited < period_seconds && !g_stop; ++waited) {
      communix::SystemClock::Instance().SleepFor(1'000'000'000);
    }
  } while (!g_stop);

  return 0;
}
