// communix_stats — scrape a live endpoint's unified metrics snapshot.
//
//   communix_stats HOST:PORT [--json] [--traces N] [--get NAME]
//
// Issues one kStats request (any role answers) and renders the reply:
// default is the aligned text form; --json emits the snapshot's JSON
// encoding (the same format tools/sig_inspect --stats reads back);
// --traces N also requests the N most recent slow-request traces;
// --get NAME prints exactly one counter/gauge value (for shell checks:
//   test "$(communix_stats $ep --get server.adds_accepted)" -gt 0).
//
// Exit status: 0 on a served snapshot, 1 on transport/protocol errors,
// 3 when --get names a key the snapshot does not carry.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/message.hpp"
#include "net/tcp.hpp"
#include "obs/snapshot_io.hpp"

namespace {

bool SplitHostPort(const std::string& spec, std::string* host,
                   std::uint16_t* port) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return false;
  }
  *host = spec.substr(0, colon);
  const int p = std::atoi(spec.c_str() + colon + 1);
  if (p <= 0 || p > 65535) return false;
  *port = static_cast<std::uint16_t>(p);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s HOST:PORT [--json] [--traces N] [--get NAME]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  std::string host;
  std::uint16_t port = 0;
  if (!SplitHostPort(argv[1], &host, &port)) return Usage(argv[0]);

  bool json = false;
  std::uint32_t traces = 0;
  std::string get_key;
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--traces") == 0) {
      traces = static_cast<std::uint32_t>(std::atoi(need_value("--traces")));
    } else if (std::strcmp(argv[i], "--get") == 0) {
      get_key = need_value("--get");
    } else {
      return Usage(argv[0]);
    }
  }

  communix::net::StatsRequest stats_req;
  stats_req.include_metrics = true;
  stats_req.include_traces = traces > 0;
  stats_req.max_traces = traces;

  communix::net::ReconnectingTcpClient client(host, port);
  auto result = client.Call(communix::net::BuildStatsRequest(stats_req));
  if (!result.ok()) {
    std::fprintf(stderr, "call failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (!result.value().ok()) {
    std::fprintf(stderr, "server refused: %s\n",
                 result.value().error.c_str());
    return 1;
  }
  const auto snap = communix::net::ParseStatsReply(result.value());
  if (!snap) {
    std::fprintf(stderr, "malformed kStats reply\n");
    return 1;
  }

  if (!get_key.empty()) {
    if (!snap->Has(get_key)) {
      std::fprintf(stderr, "no such counter/gauge: %s\n", get_key.c_str());
      return 3;
    }
    std::printf("%llu\n",
                static_cast<unsigned long long>(snap->Value(get_key)));
    return 0;
  }
  if (json) {
    std::fputs(communix::obs::SnapshotToJson(*snap).c_str(), stdout);
  } else {
    std::fputs(communix::obs::RenderSnapshotText(*snap).c_str(), stdout);
  }
  return 0;
}
