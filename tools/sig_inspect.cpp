// sig_inspect — dump Communix/Dimmunix on-disk artifacts in human form.
//
//   sig_inspect history PATH   # a Dimmunix deadlock history
//   sig_inspect repo PATH      # a Communix local repository
//   sig_inspect stats PATH     # a saved metrics snapshot (JSON, as
//                              # emitted by `communix_stats --json`)
//
// Prints one block per signature: bug key, content id, per-thread outer
// and inner stacks, hash coverage, and (for repositories) the agent's
// validation state. `stats` re-renders a scraped snapshot in the
// aligned text form, so saved scrapes diff like live ones.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "communix/repository.hpp"
#include "dimmunix/history.hpp"
#include "dimmunix/signature.hpp"
#include "obs/snapshot_io.hpp"

namespace {

using communix::dimmunix::Signature;

void PrintSignature(const Signature& sig) {
  std::printf("  bug key:    %016llx\n",
              static_cast<unsigned long long>(sig.BugKey()));
  std::printf("  content id: %016llx\n",
              static_cast<unsigned long long>(sig.ContentId()));
  std::printf("  threads:    %zu, min outer depth %zu\n", sig.num_threads(),
              sig.MinOuterDepth());
  for (std::size_t t = 0; t < sig.num_threads(); ++t) {
    const auto& e = sig.entries()[t];
    std::size_t hashed = 0;
    std::size_t total = 0;
    for (const auto* stack : {&e.outer, &e.inner}) {
      for (const auto& f : stack->frames()) {
        ++total;
        if (f.class_hash) ++hashed;
      }
    }
    std::printf("  thread %zu (hashes on %zu/%zu frames)\n", t, hashed,
                total);
    std::printf("   outer:\n%s", e.outer.ToString().c_str());
    std::printf("   inner:\n%s", e.inner.ToString().c_str());
  }
}

const char* StateName(communix::SigState s) {
  using communix::SigState;
  switch (s) {
    case SigState::kNew: return "new";
    case SigState::kAccepted: return "accepted";
    case SigState::kRejectedMalformed: return "rejected (malformed)";
    case SigState::kRejectedHash: return "rejected (hash mismatch)";
    case SigState::kRejectedDepth: return "rejected (outer depth < 5)";
    case SigState::kRejectedNesting: return "rejected (not nested)";
  }
  return "?";
}

int DumpHistory(const std::string& path) {
  auto loaded = communix::dimmunix::History::LoadFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const auto& h = loaded.value();
  std::printf("deadlock history %s: %zu signature(s)\n\n", path.c_str(),
              h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    const auto& rec = h.record(i);
    std::printf("[%zu] %s%s, added at t=%lld\n", i,
                rec.origin == communix::dimmunix::SignatureOrigin::kLocal
                    ? "local"
                    : "remote",
                rec.disabled ? ", DISABLED" : "",
                static_cast<long long>(rec.added_at));
    PrintSignature(rec.sig);
    std::printf("\n");
  }
  return 0;
}

int DumpRepo(const std::string& path) {
  communix::LocalRepository repo;
  if (auto s = communix::LocalRepository::LoadFromFile(path, repo); !s.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), s.ToString().c_str());
    return 1;
  }
  std::printf("local repository %s: %zu signature(s)\n\n", path.c_str(),
              repo.size());
  for (std::size_t i = 0; i < repo.size(); ++i) {
    const auto bytes = repo.bytes(i);
    std::printf("[%zu] %s, %zu bytes\n", i, StateName(repo.state(i)),
                bytes.size());
    const auto sig = Signature::FromBytes(
        std::span<const std::uint8_t>(bytes.data(), bytes.size()));
    if (sig) {
      PrintSignature(*sig);
    } else {
      std::printf("  (does not parse as a signature)\n");
    }
    std::printf("\n");
  }
  const auto counts = repo.GetCounts();
  std::printf("summary: %zu new, %zu accepted, %zu hash-rejected, "
              "%zu depth-rejected, %zu nesting-rejected, %zu malformed\n",
              counts.fresh, counts.accepted, counts.rejected_hash,
              counts.rejected_depth, counts.rejected_nesting,
              counts.rejected_malformed);
  return 0;
}

int DumpStats(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto snap = communix::obs::SnapshotFromJson(buf.str());
  if (!snap) {
    std::fprintf(stderr, "%s: not a metrics snapshot (expected the JSON "
                 "communix_stats --json emits)\n",
                 path.c_str());
    return 1;
  }
  std::fputs(communix::obs::RenderSnapshotText(*snap).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3 || (std::strcmp(argv[1], "history") != 0 &&
                    std::strcmp(argv[1], "repo") != 0 &&
                    std::strcmp(argv[1], "stats") != 0)) {
    std::fprintf(stderr, "usage: %s {history|repo|stats} PATH\n", argv[0]);
    return 2;
  }
  if (std::strcmp(argv[1], "stats") == 0) return DumpStats(argv[2]);
  return std::strcmp(argv[1], "history") == 0 ? DumpHistory(argv[2])
                                              : DumpRepo(argv[2]);
}
